(* Lifetime kernel code integrity and the de-privileging scanner
   (paper sections 3.5 and 5.2): loading kernel modules under the
   nested kernel, and rewriting a "kernel binary" until it is free of
   protected instructions.

     dune exec examples/module_loading.exe *)

open Nkhw
module NK = Nested_kernel.Api
module Scanner = Nested_kernel.Scanner

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let () =
  let machine = Machine.create ~frames:2048 () in
  let nk = NK.boot_exn machine in
  let falloc =
    Frame_alloc.create ~first:(NK.outer_first_frame nk) ~count:512
  in

  banner "A benign module loads and runs";
  let benign =
    Insn.assemble_raw Insn.[ Mov_ri (RAX, 0xC0FFEE); Callout 1 ]
  in
  let frame = Frame_alloc.alloc_exn falloc in
  (match NK.install_code nk ~frames:[ frame ] benign with
  | Ok () -> Printf.printf "validated and installed at frame %d\n" frame
  | Error e -> Printf.printf "rejected: %s\n" (Nested_kernel.Nk_error.to_string e));
  machine.Machine.cpu.Cpu_state.rip <- Addr.kva_of_frame frame;
  (match Exec.run ~fuel:10 machine with
  | Exec.Callout 1 ->
      Printf.printf "module ran: rax = %#x\n"
        (Cpu_state.get machine.Machine.cpu Insn.RAX)
  | other -> Format.printf "unexpected stop: %a@." Exec.pp_stop other);
  (match Machine.kwrite_u64 machine (Addr.kva_of_frame frame) 0 with
  | Error f -> Format.printf "patching it afterwards -> %a@." Fault.pp f
  | Ok () -> print_endline "BUG: loaded code writable");

  banner "A module with an explicit protected instruction is rejected";
  let hostile =
    Insn.assemble_raw
      Insn.
        [
          Mov_from_cr (RAX, CR0);
          And_ri (RAX, lnot Cr.cr0_wp);
          Mov_to_cr (CR0, RAX);
          Ret;
        ]
  in
  (match NK.install_code nk ~frames:[ Frame_alloc.alloc_exn falloc ] hostile with
  | Error e -> Printf.printf "rejected: %s\n" (Nested_kernel.Nk_error.to_string e)
  | Ok () -> print_endline "BUG: hostile module accepted");

  banner "Unaligned gadgets are caught too";
  let hidden =
    (* The bytes 0F 22 C0 (mov %rax, %cr0) hidden inside an immediate. *)
    (0x0F lsl 32) lor (0x22 lsl 40) lor (0xC0 lsl 48)
  in
  let sneaky = Insn.assemble_raw Insn.[ Mov_ri (RBX, hidden); Ret ] in
  Printf.printf "module disassembles innocently:\n";
  List.iter
    (fun (off, i) -> Format.printf "  %04x: %a@." off Insn.pp i)
    (Insn.disassemble sneaky);
  (match NK.install_code nk ~frames:[ Frame_alloc.alloc_exn falloc ] sneaky with
  | Error e ->
      Printf.printf "scanner still rejects it: %s\n"
        (Nested_kernel.Nk_error.to_string e)
  | Ok () -> print_endline "BUG: gadget module accepted");

  banner "De-privileging a whole kernel binary (section 5.2)";
  let program = Nk_workloads.Binary_gen.paper_kernel () in
  let code = Insn.assemble program in
  let summary = Scanner.summarize (Scanner.scan code) in
  Format.printf "before: %a (paper: 2 cr0 + 38 wrmsr)@." Scanner.pp_summary
    summary;
  (match Scanner.deprivilege program with
  | Error msg -> Printf.printf "rewrite failed: %s\n" msg
  | Ok (clean, stats) ->
      let after = Scanner.scan (Insn.assemble clean) in
      Printf.printf
        "after : %d findings — %d constants split, %d expressions rewritten, \
         %d nops inserted (%d passes)\n"
        (List.length after) stats.Scanner.constants_split
        stats.Scanner.exprs_rewritten stats.Scanner.nops_inserted
        stats.Scanner.iterations;
      let same =
        Nk_workloads.Binary_gen.sample_outputs program
        = Nk_workloads.Binary_gen.sample_outputs clean
      in
      Printf.printf "semantics preserved: %b\n" same)
