(* Rootkit vs the nested kernel: the paper's section 4 use cases as a
   story.  Runs the classic BSD rootkit moves — syscall-table hooking
   and DKOM process hiding — against the native kernel and against the
   nested-kernel configurations that defend each one.

     dune exec examples/rootkit_defense.exe *)

open Outer_kernel

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let run_attack config (attack : Nk_attacks.Attack.t) =
  let k = Os.boot config in
  let outcome = attack.Nk_attacks.Attack.run k in
  Printf.printf "  %-12s %s\n" (Config.name config)
    (Format.asprintf "%a" Nk_attacks.Attack.pp_outcome outcome)

let () =
  banner "Attack 1: system-call table hooking (paper 4.1.1)";
  print_endline
    "The rootkit overwrites the getpid entry of the system-call table so\n\
     every getpid dispatches to its own handler.  Only the write-once\n\
     policy configuration protects the table:";
  List.iter
    (fun c -> run_attack c Nk_attacks.Rootkit.syscall_hook)
    [ Config.Native; Config.Perspicuos; Config.Write_once ];

  banner "Attack 2: DKOM process hiding (paper 4.1.3)";
  print_endline
    "Two pointer stores unlink a process from allproc, hiding it from ps.\n\
     The write-log configuration keeps a shadow list in protected memory:";
  List.iter
    (fun c -> run_attack c Nk_attacks.Rootkit.dkom_hide_process)
    [ Config.Native; Config.Perspicuos; Config.Write_log ];

  banner "Attack 3: scrubbing the shadow list too";
  print_endline
    "A smarter rootkit removes the shadow entry through nk_write itself —\n\
     but the write-logging policy records the scrub, and forensics finds it:";
  List.iter
    (fun c -> run_attack c Nk_attacks.Rootkit.dkom_scrub_shadow)
    [ Config.Native; Config.Write_log ];

  banner "The full ps story on the write-log system";
  let k = Os.boot Config.Write_log in
  let p = Kernel.current_proc k in
  let malware_pid = Result.get_ok (Syscalls.fork k p) in
  Printf.printf "spawned malware as pid %d\n" malware_pid;
  Printf.printf "ps        : %s\n"
    (String.concat " " (List.map (fun (pid, _) -> string_of_int pid) (Kernel.ps k)));
  let node = Option.get (Proclist.find k.Kernel.allproc malware_pid) in
  ignore
    (Proclist.unlink_raw k.Kernel.machine
       ~head_va:(Proclist.head_va k.Kernel.allproc)
       ~node);
  Printf.printf "rootkit unlinks pid %d from allproc...\n" malware_pid;
  Printf.printf "ps        : %s   <- stock ps is blind\n"
    (String.concat " " (List.map (fun (pid, _) -> string_of_int pid) (Kernel.ps k)));
  (match Kernel.ps_shadow k with
  | Some pids ->
      Printf.printf "ps (shadow): %s   <- the modified ps still sees it\n"
        (String.concat " " (List.map string_of_int pids))
  | None -> ());

  banner "Invariants after all of this";
  match k.Kernel.nk with
  | Some nk ->
      Printf.printf "audit: %d violations\n"
        (List.length (Nested_kernel.Api.audit nk))
  | None -> ()
