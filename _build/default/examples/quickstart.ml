(* Quickstart: boot a machine with the nested kernel and use the
   write-protection service (paper Table 1) directly.

     dune exec examples/quickstart.exe *)

open Nkhw
module NK = Nested_kernel.Api
module Policy = Nested_kernel.Policy

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ " ==\n")

let () =
  step "boot";
  let machine = Machine.create ~frames:2048 () in
  let nk = NK.boot_exn machine in
  Printf.printf
    "nested kernel booted: paging on, WP armed, %d frames reserved for the \
     trusted domain\n"
    (NK.outer_first_frame nk);

  step "allocate protected memory (nk_alloc)";
  let wd, region =
    match NK.nk_alloc nk ~size:128 Policy.unrestricted with
    | Ok v -> v
    | Error e -> failwith (Nested_kernel.Nk_error.to_string e)
  in
  Printf.printf "128 protected bytes at %#x (write descriptor #%d)\n" region
    wd.Nested_kernel.State.wd_id;

  step "mediated writes work";
  (match NK.nk_write nk wd ~dest:region (Bytes.of_string "hello, nested kernel")
   with
  | Ok () -> print_endline "nk_write: ok"
  | Error e -> Printf.printf "nk_write failed: %s\n" (Nested_kernel.Nk_error.to_string e));
  (match NK.nk_read nk wd ~src:region ~len:20 with
  | Ok b -> Printf.printf "nk_read : %S\n" (Bytes.to_string b)
  | Error e -> Printf.printf "nk_read failed: %s\n" (Nested_kernel.Nk_error.to_string e));

  step "direct stores take a protection fault";
  (match Machine.kwrite_u64 machine region 0xdead with
  | Ok () -> print_endline "BUG: direct store succeeded"
  | Error f -> Format.printf "direct store -> %a@." Fault.pp f);

  step "bounds are enforced";
  (match NK.nk_write nk wd ~dest:(region + 120) (Bytes.make 16 'x') with
  | Error e -> Printf.printf "overflow rejected: %s\n" (Nested_kernel.Nk_error.to_string e)
  | Ok () -> print_endline "BUG: overflow accepted");

  step "a write-once region";
  let wo, once =
    Result.get_ok
      (NK.nk_alloc nk ~size:64 (Policy.write_once (Policy.write_once_state ~size:64)))
  in
  ignore (NK.nk_write nk wo ~dest:once (Bytes.of_string "initialized"));
  (match NK.nk_write nk wo ~dest:once (Bytes.of_string "overwritten") with
  | Error e -> Printf.printf "second write rejected: %s\n" (Nested_kernel.Nk_error.to_string e)
  | Ok () -> print_endline "BUG: write-once violated");

  step "the vMMU mediates page-table updates";
  let frame = NK.outer_first_frame nk in
  (match NK.declare_ptp nk ~level:1 frame with
  | Ok () -> Printf.printf "frame %d declared as a page-table page\n" frame
  | Error e -> Printf.printf "declare failed: %s\n" (Nested_kernel.Nk_error.to_string e));
  (match
     NK.write_pte nk ~ptp:frame ~index:0
       (Pte.make ~frame:(frame + 1) Pte.user_rw_nx)
   with
  | Ok () -> print_endline "nk_write_PTE: mapping installed"
  | Error e -> Printf.printf "write_pte failed: %s\n" (Nested_kernel.Nk_error.to_string e));
  (match Machine.kwrite_u64 machine (Addr.kva_of_frame frame) 0 with
  | Error f -> Format.printf "direct PTE store -> %a@." Fault.pp f
  | Ok () -> print_endline "BUG: direct PTE store succeeded");

  step "invariant audit";
  let violations = NK.audit nk in
  Printf.printf "%d violations (paper invariants I1-I13 all hold)\n"
    (List.length violations);
  Printf.printf "\ncycles consumed on the simulated clock: %d\n"
    (Clock.cycles machine.Machine.clock)
