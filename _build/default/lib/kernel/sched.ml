type t = { k : Kernel.t; mutable queue : Ktypes.pid list }

let create k = { k; queue = [ k.Kernel.current ] }
let queue t = t.queue

let add t pid = if not (List.mem pid t.queue) then t.queue <- t.queue @ [ pid ]
let remove t pid = t.queue <- List.filter (fun p -> p <> pid) t.queue

let alive t pid =
  match Kernel.proc t.k pid with
  | Some p -> p.Proc.pstate = Proc.Running
  | None -> false

let rec yield t =
  match t.queue with
  | [] -> Error Ktypes.Esrch
  | pid :: rest ->
      if not (alive t pid) then begin
        t.queue <- rest;
        yield t
      end
      else begin
        t.queue <- rest @ [ pid ];
        match t.queue with
        | next :: _ when next <> t.k.Kernel.current && alive t next -> (
            (* Scheduler bookkeeping plus the address-space switch. *)
            Nkhw.Machine.charge t.k.Kernel.machine 350;
            match Kernel.switch_to t.k next with
            | Ok () -> Ok next
            | Error _ -> Error Ktypes.Esrch)
        | next :: _ -> Ok next
        | [] -> Error Ktypes.Esrch
      end

let run_until t ~steps f =
  let rec go n =
    if n >= steps then n
    else
      match yield t with
      | Error _ -> n
      | Ok pid -> if f pid then go (n + 1) else n + 1
  in
  go 0
