type pstate = Running | Zombie | Reaped

type t = {
  pid : Ktypes.pid;
  mutable parent : Ktypes.pid;
  mutable pstate : pstate;
  vm : Vmspace.t;
  node_va : Nkhw.Addr.va;
  fds : (Ktypes.fd, Kfd.t) Hashtbl.t;
  mutable next_fd : int;
  sighandlers : (int, string) Hashtbl.t;
  mutable exit_code : int option;
}

let make ~pid ~parent ~vm ~node_va =
  {
    pid;
    parent;
    pstate = Running;
    vm;
    node_va;
    fds = Hashtbl.create 8;
    next_fd = 3;
    sighandlers = Hashtbl.create 4;
    exit_code = None;
  }

let add_fd t h =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd h;
  fd

let fd_handle t fd = Hashtbl.find_opt t.fds fd
let drop_fd t fd = Hashtbl.remove t.fds fd

let pp_state ppf s =
  Format.pp_print_string ppf
    (match s with Running -> "running" | Zombie -> "zombie" | Reaped -> "reaped")
