open Nkhw

(* Slot layout: 24 bytes = pid, allproc node va, active flag. *)
let slot_size = 24

type t = {
  nk : Nested_kernel.State.t;
  wd : Nested_kernel.State.wd;
  base : Addr.va;
  capacity : int;
  log : Nested_kernel.Nklog.t;
}

let create nk ~capacity =
  let log = Nested_kernel.Nklog.create () in
  let policy = Nested_kernel.Policy.write_log log in
  match Nested_kernel.Api.nk_alloc nk ~size:(capacity * slot_size) policy with
  | Error e -> Error e
  | Ok (wd, base) -> Ok { nk; wd; base; capacity; log }

let wd t = t.wd
let base t = t.base
let capacity t = t.capacity
let log t = t.log

let read_word t va =
  match Machine.kread_u64 (t.nk).Nested_kernel.State.machine va with
  | Ok v -> v
  | Error f -> raise (Fault.Hardware f)

let slot_va t i = t.base + (i * slot_size)
let slot_pid t i = read_word t (slot_va t i)
let slot_active t i = read_word t (slot_va t i + 16) <> 0

let word_bytes v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let slot_bytes ~pid ~node ~active =
  let b = Bytes.create slot_size in
  Bytes.set_int64_le b 0 (Int64.of_int pid);
  Bytes.set_int64_le b 8 (Int64.of_int node);
  Bytes.set_int64_le b 16 (if active then 1L else 0L);
  b

let err_string = function
  | Ok () -> Ok ()
  | Error e -> Error (Nested_kernel.Nk_error.to_string e)

let find_slot t p =
  let rec go i = if i = t.capacity then None else if p i then Some i else go (i + 1) in
  go 0

let on_insert t pid ~node_va =
  match find_slot t (fun i -> not (slot_active t i)) with
  | None -> Error "shadow process list full"
  | Some i ->
      err_string
        (Nested_kernel.Api.nk_write t.nk t.wd ~dest:(slot_va t i)
           (slot_bytes ~pid ~node:node_va ~active:true))

let on_remove t pid =
  match find_slot t (fun i -> slot_active t i && slot_pid t i = pid) with
  | None -> Error "pid not in shadow list"
  | Some i ->
      err_string
        (Nested_kernel.Api.nk_write t.nk t.wd
           ~dest:(slot_va t i + 16)
           (word_bytes 0))

let pids t =
  let rec go i acc =
    if i = t.capacity then List.rev acc
    else if slot_active t i then go (i + 1) (slot_pid t i :: acc)
    else go (i + 1) acc
  in
  go 0 []

let entry_count t = List.length (pids t)

let slot_of_pid t pid =
  Option.map (slot_va t)
    (find_slot t (fun i -> slot_active t i && slot_pid t i = pid))

(* Replay the write log: a record that clears the active word of a
   slot is a removal; the pid is whatever the slot held at that point
   in the replayed history. *)
let removal_history t =
  let size = t.capacity * slot_size in
  let state = Bytes.make size '\000' in
  let removals = ref [] in
  List.iter
    (fun (r : Nested_kernel.Nklog.record) ->
      let slot = r.Nested_kernel.Nklog.offset / slot_size in
      let within = r.Nested_kernel.Nklog.offset mod slot_size in
      let deactivates =
        within <= 16
        && within + String.length r.Nested_kernel.Nklog.data > 16
        &&
        let byte = String.get r.Nested_kernel.Nklog.data (16 - within) in
        byte = '\000'
      in
      if deactivates && Bytes.get_int64_le state ((slot * slot_size) + 16) <> 0L
      then begin
        let pid = Int64.to_int (Bytes.get_int64_le state (slot * slot_size)) in
        removals := (pid, r.Nested_kernel.Nklog.seq) :: !removals
      end;
      Bytes.blit_string r.Nested_kernel.Nklog.data 0 state r.Nested_kernel.Nklog.offset
        (String.length r.Nested_kernel.Nklog.data))
    (Nested_kernel.Nklog.records t.log);
  List.rev !removals
