open Nkhw

(** The [allproc] process list, held in {e simulated} kernel memory.

    Each node is a doubly-linked record of raw words (pid, next, prev,
    state) living in ordinary outer-kernel data pages — which is
    precisely why rootkits can unlink a node with two pointer stores
    (DKOM, paper section 4.1.3).  Traversal reads kernel memory
    through the MMU like real kernel code would. *)

type t

val node_size : int

val create : Machine.t -> Kalloc.t -> head_va:Addr.va -> t
(** Initialize an empty list whose head pointer lives at [head_va]. *)

val head_va : t -> Addr.va

val insert : t -> Ktypes.pid -> (Addr.va, Ktypes.errno) result
(** Allocate and link a node at the list head; returns the node's
    kernel virtual address. *)

val set_state : t -> node:Addr.va -> int -> (unit, Ktypes.errno) result

val remove : t -> node:Addr.va -> (unit, Ktypes.errno) result
(** Unlink and free the node — ordinary pointer surgery, exactly the
    writes a rootkit performs (minus the free). *)

val unlink_raw : Machine.t -> head_va:Addr.va -> node:Addr.va -> (unit, Fault.t) result
(** The rootkit primitive: unlink a node with direct stores, no
    allocator bookkeeping.  Exposed for the attack library. *)

val pids : t -> (Ktypes.pid * int) list
(** Traverse the list: [(pid, state)] pairs, head first.  Raises
    [Fault.Hardware] only if kernel memory is unreadable. *)

val find : t -> Ktypes.pid -> Addr.va option
val length : t -> int
