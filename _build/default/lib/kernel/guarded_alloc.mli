open Nkhw

(** Kernel object allocator with optionally protected metadata.

    The paper's section 6 proposes "moving the kernel memory allocator
    into the nested kernel [to] protect the kernel from memory safety
    attacks that overwrite allocator meta-data" (the classic FreeBSD
    UMA exploit of Phrack 0x42).

    This allocator exists in both worlds:

    - {!create_inline} stores free-list links {e inside the freed
      chunks themselves}, exactly like UMA's per-slab free lists — so a
      use-after-free write of 8 bytes redirects the free list and turns
      the next two allocations into a write-anything-anywhere
      primitive;
    - {!create_guarded} keeps every link in nested-kernel protected
      memory, updated via [nk_write]; corrupting freed chunk bytes then
      has no effect on where the allocator sends future allocations. *)

type t

val create_inline : Machine.t -> Frame_alloc.t -> chunk_size:int -> t

val create_guarded :
  Machine.t ->
  Frame_alloc.t ->
  Nested_kernel.State.t ->
  chunk_size:int ->
  (t, Nested_kernel.Nk_error.t) result

val alloc : t -> (Addr.va, Ktypes.errno) result
(** A chunk of kernel memory (not zeroed — like real slab allocators,
    freed contents persist). *)

val free : t -> Addr.va -> (unit, Ktypes.errno) result

val guarded : t -> bool
val live : t -> int

val chunk_size : t -> int

val metadata_in_band : t -> bool
(** True when free-list links live inside the chunks (attackable). *)
