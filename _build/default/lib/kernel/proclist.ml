open Nkhw

type t = { machine : Machine.t; kalloc : Kalloc.t; head : Addr.va }

let node_size = 64
let off_pid = 0
let off_next = 8
let off_prev = 16
let off_state = 24

let read m va =
  match Machine.kread_u64 m va with
  | Ok v -> v
  | Error f -> raise (Fault.Hardware f)

let write m va v =
  match Machine.kwrite_u64 m va v with
  | Ok () -> ()
  | Error f -> raise (Fault.Hardware f)

let create machine kalloc ~head_va =
  write machine head_va 0;
  { machine; kalloc; head = head_va }

let head_va t = t.head

let insert t pid =
  match Kalloc.alloc t.kalloc with
  | None -> Error Ktypes.Enomem
  | Some node ->
      let m = t.machine in
      let old_head = read m t.head in
      write m (node + off_pid) pid;
      write m (node + off_next) old_head;
      write m (node + off_prev) 0;
      write m (node + off_state) 0;
      if old_head <> 0 then write m (old_head + off_prev) node;
      write m t.head node;
      Ok node

let set_state t ~node state =
  write t.machine (node + off_state) state;
  Ok ()

let unlink_raw machine ~head_va ~node =
  let ( let* ) = Result.bind in
  let* next = Machine.kread_u64 machine (node + off_next) in
  let* prev = Machine.kread_u64 machine (node + off_prev) in
  let* () =
    if prev = 0 then Machine.kwrite_u64 machine head_va next
    else Machine.kwrite_u64 machine (prev + off_next) next
  in
  if next <> 0 then Machine.kwrite_u64 machine (next + off_prev) prev
  else Ok ()

let remove t ~node =
  match unlink_raw t.machine ~head_va:t.head ~node with
  | Error _ -> Error Ktypes.Efault
  | Ok () ->
      Kalloc.free t.kalloc node;
      Ok ()

let pids t =
  let m = t.machine in
  let rec go node acc guard =
    if node = 0 || guard = 0 then List.rev acc
    else
      let pid = read m (node + off_pid) in
      let state = read m (node + off_state) in
      go (read m (node + off_next)) ((pid, state) :: acc) (guard - 1)
  in
  go (read m t.head) [] 100_000

let find t pid =
  let m = t.machine in
  let rec go node guard =
    if node = 0 || guard = 0 then None
    else if read m (node + off_pid) = pid then Some node
    else go (read m (node + off_next)) (guard - 1)
  in
  go (read m t.head) 100_000

let length t = List.length (pids t)
