type t = Native | Perspicuos | Append_only | Write_once | Write_log

let all = [ Native; Perspicuos; Append_only; Write_once; Write_log ]

let name = function
  | Native -> "native"
  | Perspicuos -> "perspicuos"
  | Append_only -> "append-only"
  | Write_once -> "write-once"
  | Write_log -> "write-log"

let is_nested = function
  | Native -> false
  | Perspicuos | Append_only | Write_once | Write_log -> true

let of_name s =
  List.find_opt (fun c -> name c = String.lowercase_ascii s) all
