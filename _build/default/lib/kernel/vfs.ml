open Nkhw

type file = {
  mutable data : Bytes.t option;  (* None = sparse (size only) *)
  mutable size : int;
}

type t = {
  machine : Machine.t;
  files : (string, file) Hashtbl.t;
  mutable next_handle : int;
  handles : (int, string * int ref) Hashtbl.t;
}

type handle = int

(* Cycle costs of the VFS paths (native kernel work, identical in
   every configuration). *)
let cost_lookup = 600
let cost_open = 500
let cost_close = 320
let cost_rw_base = 250
let cost_unlink = 700

let create machine =
  {
    machine;
    files = Hashtbl.create 64;
    next_handle = 1;
    handles = Hashtbl.create 64;
  }

let add_file t name data =
  Hashtbl.replace t.files name { data = Some data; size = Bytes.length data }

let add_sized_file t name size =
  Hashtbl.replace t.files name { data = None; size }

let exists t name = Hashtbl.mem t.files name

let file_size t name =
  Option.map (fun f -> f.size) (Hashtbl.find_opt t.files name)

let open_ t name ~create:do_create =
  Machine.charge t.machine (cost_lookup + cost_open);
  match Hashtbl.find_opt t.files name with
  | None when not do_create -> Error Ktypes.Enoent
  | None ->
      Hashtbl.replace t.files name { data = Some Bytes.empty; size = 0 };
      let h = t.next_handle in
      t.next_handle <- h + 1;
      Hashtbl.replace t.handles h (name, ref 0);
      Ok h
  | Some _ ->
      let h = t.next_handle in
      t.next_handle <- h + 1;
      Hashtbl.replace t.handles h (name, ref 0);
      Ok h

let close t h =
  Machine.charge t.machine cost_close;
  if Hashtbl.mem t.handles h then begin
    Hashtbl.remove t.handles h;
    Ok ()
  end
  else Error Ktypes.Ebadf

let with_handle t h f =
  match Hashtbl.find_opt t.handles h with
  | None -> Error Ktypes.Ebadf
  | Some (name, pos) -> (
      match Hashtbl.find_opt t.files name with
      | None -> Error Ktypes.Enoent
      | Some file -> f file pos)

let charge_copy t n =
  Machine.charge t.machine
    (cost_rw_base + (t.machine.Machine.costs.Costs.byte_copy_x8 * ((n + 7) / 8)))

let read t h n =
  with_handle t h (fun file pos ->
      let available = max 0 (file.size - !pos) in
      let got = min n available in
      pos := !pos + got;
      charge_copy t got;
      Ok got)

let read_bytes t h n =
  with_handle t h (fun file pos ->
      let available = max 0 (file.size - !pos) in
      let got = min n available in
      let out =
        match file.data with
        | Some data -> Bytes.sub data !pos got
        | None -> Bytes.make got '\000'
      in
      pos := !pos + got;
      charge_copy t got;
      Ok out)

let write t h data =
  with_handle t h (fun file pos ->
      let n = Bytes.length data in
      let new_size = max file.size (!pos + n) in
      (match file.data with
      | Some old when Bytes.length old < new_size ->
          let grown = Bytes.make new_size '\000' in
          Bytes.blit old 0 grown 0 (Bytes.length old);
          Bytes.blit data 0 grown !pos n;
          file.data <- Some grown
      | Some old -> Bytes.blit data 0 old !pos n
      | None -> ());
      file.size <- new_size;
      pos := !pos + n;
      charge_copy t n;
      Ok n)

let seek t h off =
  with_handle t h (fun file pos ->
      if off < 0 || off > file.size then Error Ktypes.Einval
      else begin
        pos := off;
        Ok ()
      end)

let unlink t name =
  Machine.charge t.machine cost_unlink;
  if Hashtbl.mem t.files name then begin
    Hashtbl.remove t.files name;
    Ok ()
  end
  else Error Ktypes.Enoent

let file_count t = Hashtbl.length t.files
