(** What a file descriptor can refer to. *)

type t =
  | File of Vfs.handle
  | Pipe_read of Pipe.t
  | Pipe_write of Pipe.t

val close : Vfs.t -> t -> (unit, Ktypes.errno) result
(** Release the underlying resource (file handle or pipe end). *)
