open Nkhw

(** Slab-style kernel object allocator.

    Carves fixed-size chunks out of physical frames taken from the
    outer kernel's pool and hands them out as kernel virtual addresses
    (direct map).  Process-list nodes and other kernel structures that
    must live in {e simulated} memory — so that attacks can corrupt
    them — are allocated here. *)

type t

val create : Machine.t -> Frame_alloc.t -> chunk_size:int -> t
(** [chunk_size] must divide the page size. *)

val alloc : t -> Addr.va option
(** A zeroed chunk, or [None] when the frame pool is exhausted. *)

val free : t -> Addr.va -> unit
val chunk_size : t -> int
val live_chunks : t -> int
