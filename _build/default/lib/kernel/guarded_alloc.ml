open Nkhw

type metadata =
  | Inline of { mutable head : Addr.va }
      (* free chunks form a linked list through their own first word *)
  | Guarded of {
      nk : Nested_kernel.State.t;
      wd : Nested_kernel.State.wd;
      base : Addr.va;  (* slot 0 = count, slots 1.. = free-chunk stack *)
      capacity : int;
    }

type t = {
  machine : Machine.t;
  falloc : Frame_alloc.t;
  chunk_size : int;
  meta : metadata;
  mutable live : int;
}

let stack_capacity = 4096

let create_inline machine falloc ~chunk_size =
  if chunk_size < 8 || Addr.page_size mod chunk_size <> 0 then
    invalid_arg "Guarded_alloc: chunk size must be >=8 and divide the page";
  { machine; falloc; chunk_size; meta = Inline { head = 0 }; live = 0 }

let create_guarded machine falloc nk ~chunk_size =
  if chunk_size < 8 || Addr.page_size mod chunk_size <> 0 then
    invalid_arg "Guarded_alloc: chunk size must be >=8 and divide the page";
  match
    Nested_kernel.Api.nk_alloc nk
      ~size:((stack_capacity + 1) * 8)
      Nested_kernel.Policy.unrestricted
  with
  | Error e -> Error e
  | Ok (wd, base) ->
      Ok
        {
          machine;
          falloc;
          chunk_size;
          meta = Guarded { nk; wd; base; capacity = stack_capacity };
          live = 0;
        }

let word v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let guarded t = match t.meta with Guarded _ -> true | Inline _ -> false
let metadata_in_band t = not (guarded t)
let chunk_size t = t.chunk_size
let live t = t.live

(* Guarded free-list stack, entirely in protected memory. *)
let g_count machine ~base =
  match Machine.kread_u64 machine base with Ok v -> v | Error _ -> 0

let g_push t nk wd base capacity va =
  let n = g_count t.machine ~base in
  if n >= capacity then Error Ktypes.Enomem
  else
    match
      ( Nested_kernel.Api.nk_write nk wd ~dest:(base + ((n + 1) * 8)) (word va),
        Nested_kernel.Api.nk_write nk wd ~dest:base (word (n + 1)) )
    with
    | Ok (), Ok () -> Ok ()
    | Error _, _ | _, Error _ -> Error Ktypes.Efault

let g_pop t nk wd base =
  let n = g_count t.machine ~base in
  if n = 0 then Ok None
  else
    match Machine.kread_u64 t.machine (base + (n * 8)) with
    | Error _ -> Error Ktypes.Efault
    | Ok va -> (
        match Nested_kernel.Api.nk_write nk wd ~dest:base (word (n - 1)) with
        | Ok () -> Ok (Some va)
        | Error _ -> Error Ktypes.Efault)

let grow t =
  match Frame_alloc.alloc t.falloc with
  | None -> Error Ktypes.Enomem
  | Some frame ->
      let base = Addr.kva_of_frame frame in
      let per_page = Addr.page_size / t.chunk_size in
      let rec chain i =
        if i >= per_page then Ok ()
        else
          let chunk = base + (i * t.chunk_size) in
          match t.meta with
          | Inline il ->
              (* Thread the new chunk onto the in-band free list. *)
              let next = il.head in
              il.head <- chunk;
              (match Machine.kwrite_u64 t.machine chunk next with
              | Ok () -> chain (i + 1)
              | Error _ -> Error Ktypes.Efault)
          | Guarded { nk; wd; base = mbase; capacity } -> (
              match g_push t nk wd mbase capacity chunk with
              | Ok () -> chain (i + 1)
              | Error e -> Error e)
      in
      chain 0

let rec alloc t =
  Machine.charge t.machine 60;
  match t.meta with
  | Inline il ->
      if il.head = 0 then
        match grow t with Error e -> Error e | Ok () -> alloc t
      else (
        (* Classic UMA pop: blindly trust the in-band link. *)
        match Machine.kread_u64 t.machine il.head with
        | Error _ -> Error Ktypes.Efault
        | Ok next ->
            let chunk = il.head in
            il.head <- next;
            t.live <- t.live + 1;
            Ok chunk)
  | Guarded { nk; wd; base; _ } -> (
      match g_pop t nk wd base with
      | Error e -> Error e
      | Ok (Some chunk) ->
          t.live <- t.live + 1;
          Ok chunk
      | Ok None -> (
          match grow t with Error e -> Error e | Ok () -> alloc t))

let free t va =
  Machine.charge t.machine 45;
  t.live <- t.live - 1;
  match t.meta with
  | Inline il -> (
      match Machine.kwrite_u64 t.machine va il.head with
      | Ok () ->
          il.head <- va;
          Ok ()
      | Error _ -> Error Ktypes.Efault)
  | Guarded { nk; wd; base; capacity } -> g_push t nk wd base capacity va
