(** Round-robin scheduler.

    Context switches go through the kernel's MMU backend ([load_cr3]),
    so under the nested kernel every switch pays a mediated
    control-register load — the cost the paper's section 3.7 design
    (map/execute/unmap of the CR3-writing code page) puts on the
    address-space switch path. *)

type t

val create : Kernel.t -> t
(** Run queue seeded with the current process. *)

val add : t -> Ktypes.pid -> unit
val remove : t -> Ktypes.pid -> unit
val queue : t -> Ktypes.pid list

val yield : t -> (Ktypes.pid, Ktypes.errno) result
(** Rotate to the next runnable process and switch address spaces.
    Returns the pid now running.  Dead processes found at the head of
    the queue are dropped. *)

val run_until : t -> steps:int -> (Ktypes.pid -> bool) -> int
(** Yield repeatedly — up to [steps] times — running the callback for
    the process that just got the CPU, until it returns false.
    Returns the number of switches performed. *)
