let handler_id sysno = 100 + sysno

let ( let* ) = Result.bind

(* Handler bodies.  Each charges only through the kernel services it
   invokes; the dispatcher has already charged the boundary cost. *)

let h_getpid (_ : Kernel.t) (p : Proc.t) (_ : Ktypes.sysarg list) =
  Ok p.Proc.pid

let h_getppid (_ : Kernel.t) (p : Proc.t) (_ : Ktypes.sysarg list) =
  Ok p.Proc.parent

let h_open (k : Kernel.t) (p : Proc.t) args =
  let* path = Ktypes.arg_str args 0 in
  let* create = Ktypes.arg_int args 1 in
  let* h = Vfs.open_ k.Kernel.vfs path ~create:(create <> 0) in
  Ok (Proc.add_fd p (Kfd.File h))

let h_close (k : Kernel.t) (p : Proc.t) args =
  let* fd = Ktypes.arg_int args 0 in
  match Proc.fd_handle p fd with
  | None -> Error Ktypes.Ebadf
  | Some h ->
      Proc.drop_fd p fd;
      let* () = Kfd.close k.Kernel.vfs h in
      Ok 0

let h_read (k : Kernel.t) (p : Proc.t) args =
  let* fd = Ktypes.arg_int args 0 in
  let* n = Ktypes.arg_int args 1 in
  match Proc.fd_handle p fd with
  | None -> Error Ktypes.Ebadf
  | Some (Kfd.File h) -> Vfs.read k.Kernel.vfs h n
  | Some (Kfd.Pipe_read pipe) -> Ok (Bytes.length (Pipe.read pipe n))
  | Some (Kfd.Pipe_write _) -> Error Ktypes.Ebadf

let h_write (k : Kernel.t) (p : Proc.t) args =
  let* fd = Ktypes.arg_int args 0 in
  let* buf = Ktypes.arg_buf args 1 in
  match Proc.fd_handle p fd with
  | None -> Error Ktypes.Ebadf
  | Some (Kfd.File h) -> Vfs.write k.Kernel.vfs h buf
  | Some (Kfd.Pipe_write pipe) -> Ok (Pipe.write pipe buf)
  | Some (Kfd.Pipe_read _) -> Error Ktypes.Ebadf

let h_mmap (k : Kernel.t) (p : Proc.t) args =
  let* len = Ktypes.arg_int args 0 in
  let* rw = Ktypes.arg_int args 1 in
  let* populate = Ktypes.arg_int args 2 in
  let kind =
    match Ktypes.arg_int args 3 with
    | Ok 1 -> Vmspace.File
    | Ok _ | Error _ -> Vmspace.Anon
  in
  let prot = if rw <> 0 then Vmspace.Rw else Vmspace.Ro in
  Vmspace.map_region k.Kernel.env p.Proc.vm ~len prot kind
    ~populate:(populate <> 0)

let h_munmap (k : Kernel.t) (p : Proc.t) args =
  let* va = Ktypes.arg_int args 0 in
  let* () = Vmspace.unmap_region k.Kernel.env p.Proc.vm va in
  Ok 0

let h_fork (k : Kernel.t) (p : Proc.t) (_ : Ktypes.sysarg list) =
  Kernel.fork_proc k p

let h_exit (k : Kernel.t) (p : Proc.t) args =
  let code = Result.value ~default:0 (Ktypes.arg_int args 0) in
  Kernel.exit_proc k p code;
  Ok 0

let h_execve (k : Kernel.t) (p : Proc.t) args =
  let* path = Ktypes.arg_str args 0 in
  if not (Vfs.exists k.Kernel.vfs path) then Error Ktypes.Enoent
  else
    let text = Result.value ~default:16 (Ktypes.arg_int args 1) in
    let data = Result.value ~default:8 (Ktypes.arg_int args 2) in
    let stack = Result.value ~default:8 (Ktypes.arg_int args 3) in
    let* () =
      Kernel.exec_proc k p ~text_pages:text ~data_pages:data ~stack_pages:stack
    in
    Ok 0

let h_sigaction (_ : Kernel.t) (p : Proc.t) args =
  let* signal = Ktypes.arg_int args 0 in
  let* tag = Ktypes.arg_str args 1 in
  if signal <= 0 || signal > 64 then Error Ktypes.Einval
  else begin
    Hashtbl.replace p.Proc.sighandlers signal tag;
    Ok 0
  end

let h_kill (k : Kernel.t) (p : Proc.t) args =
  let* target = Ktypes.arg_int args 0 in
  let* signal = Ktypes.arg_int args 1 in
  if target = p.Proc.pid then
    let* () = Kernel.deliver_signal k p signal in
    Ok 0
  else
    match Kernel.proc k target with
    | None -> Error Ktypes.Esrch
    | Some q ->
        (* Cross-process: deliver on the target's next resumption; the
           sender only pays the posting cost. *)
        ignore q;
        Nkhw.Machine.charge k.Kernel.machine 400;
        Ok 0

let h_wait (k : Kernel.t) (p : Proc.t) (_ : Ktypes.sysarg list) =
  Kernel.wait_proc k p

let h_pipe (k : Kernel.t) (p : Proc.t) (_ : Ktypes.sysarg list) =
  let* pipe =
    match Pipe.create k.Kernel.machine k.Kernel.falloc with
    | Ok pipe -> Ok pipe
    | Error e -> Error e
  in
  let rfd = Proc.add_fd p (Kfd.Pipe_read pipe) in
  let wfd = Proc.add_fd p (Kfd.Pipe_write pipe) in
  (* fds are sequential; the wrapper exposes both ends. *)
  assert (wfd = rfd + 1);
  Ok rfd

let h_unlink (k : Kernel.t) (_ : Proc.t) args =
  let* path = Ktypes.arg_str args 0 in
  let* () = Vfs.unlink k.Kernel.vfs path in
  Ok 0

let table =
  [
    (Ktypes.sys_getpid, h_getpid);
    (Ktypes.sys_getppid, h_getppid);
    (Ktypes.sys_open, h_open);
    (Ktypes.sys_close, h_close);
    (Ktypes.sys_read, h_read);
    (Ktypes.sys_write, h_write);
    (Ktypes.sys_mmap, h_mmap);
    (Ktypes.sys_munmap, h_munmap);
    (Ktypes.sys_fork, h_fork);
    (Ktypes.sys_exit, h_exit);
    (Ktypes.sys_execve, h_execve);
    (Ktypes.sys_sigaction, h_sigaction);
    (Ktypes.sys_kill, h_kill);
    (Ktypes.sys_wait, h_wait);
    (Ktypes.sys_unlink, h_unlink);
    (Ktypes.sys_pipe, h_pipe);
  ]

let install_all k =
  List.iter
    (fun (sysno, fn) ->
      Kernel.register_handler k (handler_id sysno) fn;
      match Kernel.install_syscall k ~sysno ~handler_id:(handler_id sysno) with
      | Ok () -> ()
      | Error e ->
          failwith (Printf.sprintf "install_all: syscall %d: %s" sysno e))
    table

(* Wrappers going through the full dispatch path. *)

let getpid k p = Kernel.syscall k p Ktypes.sys_getpid []
let getppid k p = Kernel.syscall k p Ktypes.sys_getppid []

let open_ k p path =
  Kernel.syscall k p Ktypes.sys_open [ Ktypes.Str path; Ktypes.Int 1 ]

let close k p fd = Kernel.syscall k p Ktypes.sys_close [ Ktypes.Int fd ]

let read k p fd n =
  Kernel.syscall k p Ktypes.sys_read [ Ktypes.Int fd; Ktypes.Int n ]

let write k p fd buf =
  Kernel.syscall k p Ktypes.sys_write [ Ktypes.Int fd; Ktypes.Buf buf ]

let mmap k p ?(file = false) ~len ~rw ~populate () =
  Kernel.syscall k p Ktypes.sys_mmap
    [
      Ktypes.Int len;
      Ktypes.Int (if rw then 1 else 0);
      Ktypes.Int (if populate then 1 else 0);
      Ktypes.Int (if file then 1 else 0);
    ]

let munmap k p va = Kernel.syscall k p Ktypes.sys_munmap [ Ktypes.Int va ]
let fork k p = Kernel.syscall k p Ktypes.sys_fork []
let exit_ k p code = Kernel.syscall k p Ktypes.sys_exit [ Ktypes.Int code ]

let execve k p ?(text_pages = 16) ?(data_pages = 8) ?(stack_pages = 8) path =
  Kernel.syscall k p Ktypes.sys_execve
    [
      Ktypes.Str path;
      Ktypes.Int text_pages;
      Ktypes.Int data_pages;
      Ktypes.Int stack_pages;
    ]

let sigaction k p signal tag =
  Kernel.syscall k p Ktypes.sys_sigaction [ Ktypes.Int signal; Ktypes.Str tag ]

let kill k p target signal =
  Kernel.syscall k p Ktypes.sys_kill [ Ktypes.Int target; Ktypes.Int signal ]

let wait k p = Kernel.syscall k p Ktypes.sys_wait []

let pipe k p =
  (* Returns (read_fd, write_fd). *)
  Result.map (fun rfd -> (rfd, rfd + 1)) (Kernel.syscall k p Ktypes.sys_pipe [])
let unlink k p path = Kernel.syscall k p Ktypes.sys_unlink [ Ktypes.Str path ]
