type t =
  | File of Vfs.handle
  | Pipe_read of Pipe.t
  | Pipe_write of Pipe.t

let close vfs = function
  | File h -> Vfs.close vfs h
  | Pipe_read p ->
      Pipe.drop_reader p;
      Pipe.release p;
      Ok ()
  | Pipe_write p ->
      Pipe.drop_writer p;
      Pipe.release p;
      Ok ()
