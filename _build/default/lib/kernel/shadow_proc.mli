open Nkhw

(** Shadow process list (paper section 4.1.3).

    A write-logged mirror of [allproc] in nested-kernel-protected
    memory.  Every legitimate insertion and removal is performed with
    [nk_write] under the write-logging policy, so a rootkit that wants
    a process to vanish from the shadow list must produce a logged
    write — and the forensic log then reveals the hidden process.  The
    modified [ps] reads this list instead of [allproc]. *)

type t

val create :
  Nested_kernel.State.t -> capacity:int -> (t, Nested_kernel.Nk_error.t) result

val on_insert : t -> Ktypes.pid -> node_va:Addr.va -> (unit, string) result
(** Mirror a process creation (logged). *)

val on_remove : t -> Ktypes.pid -> (unit, string) result
(** Mirror a legitimate reap (logged). *)

val pids : t -> Ktypes.pid list
(** Live entries, as the shadow-aware [ps] reports them. *)

val entry_count : t -> int
val capacity : t -> int
val log : t -> Nested_kernel.Nklog.t
val wd : t -> Nested_kernel.State.wd
val base : t -> Addr.va
val slot_of_pid : t -> Ktypes.pid -> Addr.va option
(** Address of the live slot holding [pid] (attackers use this to aim
    their [nk_write]). *)

val removal_history : t -> (Ktypes.pid * int) list
(** Forensic reconstruction: every (pid, log-sequence) whose shadow
    slot was deactivated, replayed from the write log. *)
