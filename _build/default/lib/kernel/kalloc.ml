open Nkhw

type t = {
  machine : Machine.t;
  falloc : Frame_alloc.t;
  chunk_size : int;
  mutable free_list : Addr.va list;
  mutable live : int;
}

let create machine falloc ~chunk_size =
  if chunk_size <= 0 || Addr.page_size mod chunk_size <> 0 then
    invalid_arg "Kalloc.create: chunk size must divide the page size";
  { machine; falloc; chunk_size; free_list = []; live = 0 }

let grow t =
  match Frame_alloc.alloc t.falloc with
  | None -> false
  | Some frame ->
      Phys_mem.zero_frame t.machine.Machine.mem frame;
      Machine.charge t.machine t.machine.Machine.costs.Costs.page_zero;
      let base = Addr.kva_of_frame frame in
      for i = (Addr.page_size / t.chunk_size) - 1 downto 0 do
        t.free_list <- (base + (i * t.chunk_size)) :: t.free_list
      done;
      true

let alloc t =
  (match t.free_list with [] -> ignore (grow t) | _ -> ());
  match t.free_list with
  | [] -> None
  | va :: rest ->
      t.free_list <- rest;
      t.live <- t.live + 1;
      Machine.charge t.machine 40;
      Some va

let free t va =
  t.free_list <- va :: t.free_list;
  t.live <- t.live - 1;
  Machine.charge t.machine 25

let chunk_size t = t.chunk_size
let live_chunks t = t.live
