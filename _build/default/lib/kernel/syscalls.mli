(** System-call handlers and their installation.

    Handler identifiers are [100 + syscall number]; the dispatcher
    resolves the identifier found in the (possibly protected)
    system-call table through the kernel's registry. *)

val handler_id : int -> int
(** Identifier conventionally registered for a syscall number. *)

val install_all : Kernel.t -> unit
(** Register every handler and populate the system-call table.  In the
    Write_once configuration this performs the single permitted write
    of each table entry. *)

(** Convenience wrappers used by workloads, examples and tests; each
    goes through the full dispatch path. *)

val getpid : Kernel.t -> Proc.t -> (int, Ktypes.errno) result
val open_ : Kernel.t -> Proc.t -> string -> (int, Ktypes.errno) result
val close : Kernel.t -> Proc.t -> int -> (int, Ktypes.errno) result
val read : Kernel.t -> Proc.t -> int -> int -> (int, Ktypes.errno) result
val write : Kernel.t -> Proc.t -> int -> bytes -> (int, Ktypes.errno) result

val mmap :
  Kernel.t -> Proc.t -> ?file:bool -> len:int -> rw:bool -> populate:bool ->
  unit -> (int, Ktypes.errno) result

val munmap : Kernel.t -> Proc.t -> int -> (int, Ktypes.errno) result
val fork : Kernel.t -> Proc.t -> (int, Ktypes.errno) result
val exit_ : Kernel.t -> Proc.t -> int -> (int, Ktypes.errno) result

val execve :
  Kernel.t -> Proc.t -> ?text_pages:int -> ?data_pages:int -> ?stack_pages:int ->
  string -> (int, Ktypes.errno) result

val sigaction : Kernel.t -> Proc.t -> int -> string -> (int, Ktypes.errno) result
val kill : Kernel.t -> Proc.t -> int -> int -> (int, Ktypes.errno) result
val wait : Kernel.t -> Proc.t -> (int, Ktypes.errno) result

(** [pipe] returns (read end, write end). *)
val pipe : Kernel.t -> Proc.t -> (int * int, Ktypes.errno) result
val unlink : Kernel.t -> Proc.t -> string -> (int, Ktypes.errno) result
val getppid : Kernel.t -> Proc.t -> (int, Ktypes.errno) result
