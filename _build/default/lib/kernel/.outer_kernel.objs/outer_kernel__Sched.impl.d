lib/kernel/sched.ml: Kernel Ktypes List Nkhw Proc
