lib/kernel/vfs.mli: Ktypes Machine Nkhw
