lib/kernel/syscalls.ml: Bytes Hashtbl Kernel Kfd Ktypes List Nkhw Pipe Printf Proc Result Vfs Vmspace
