lib/kernel/vfs.ml: Bytes Costs Hashtbl Ktypes Machine Nkhw Option
