lib/kernel/vmspace.ml: Addr Asid_pool Costs Fault Frame_alloc Hashtbl Ktypes List Machine Mmu_backend Nkhw Option Page_table Phys_mem Pte Result Tlb
