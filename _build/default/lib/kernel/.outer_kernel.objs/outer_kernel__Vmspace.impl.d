lib/kernel/vmspace.ml: Addr Costs Fault Frame_alloc Hashtbl Ktypes List Machine Mmu_backend Nkhw Option Page_table Phys_mem Pte Result Tlb
