lib/kernel/ktypes.ml: List
