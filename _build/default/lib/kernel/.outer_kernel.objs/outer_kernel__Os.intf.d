lib/kernel/os.mli: Config Kernel
