lib/kernel/syscalls.mli: Kernel Ktypes Proc
