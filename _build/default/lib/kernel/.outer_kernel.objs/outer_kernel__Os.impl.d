lib/kernel/os.ml: Kernel List Syscalls Vfs
