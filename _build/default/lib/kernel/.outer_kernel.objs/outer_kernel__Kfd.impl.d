lib/kernel/kfd.ml: Pipe Vfs
