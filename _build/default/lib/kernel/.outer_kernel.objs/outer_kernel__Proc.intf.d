lib/kernel/proc.mli: Addr Format Hashtbl Kfd Ktypes Nkhw Vmspace
