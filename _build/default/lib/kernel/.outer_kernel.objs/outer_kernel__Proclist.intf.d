lib/kernel/proclist.mli: Addr Fault Kalloc Ktypes Machine Nkhw
