lib/kernel/proc.ml: Format Hashtbl Kfd Ktypes Nkhw Vmspace
