lib/kernel/mac.mli: Addr Frame_alloc Ktypes Machine Nested_kernel Nkhw
