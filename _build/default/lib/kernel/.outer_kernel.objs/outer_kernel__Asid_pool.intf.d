lib/kernel/asid_pool.mli: Machine Nkhw
