lib/kernel/shadow_proc.ml: Addr Bytes Fault Int64 List Machine Nested_kernel Nkhw Option String
