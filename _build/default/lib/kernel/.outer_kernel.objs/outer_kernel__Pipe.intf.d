lib/kernel/pipe.mli: Frame_alloc Ktypes Machine Nkhw
