lib/kernel/config.ml: List String
