lib/kernel/proclist.ml: Addr Fault Kalloc Ktypes List Machine Nkhw Result
