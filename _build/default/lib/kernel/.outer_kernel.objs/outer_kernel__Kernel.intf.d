lib/kernel/kernel.mli: Addr Config Fault Frame_alloc Hashtbl Kalloc Ktypes Machine Mmu_backend Nested_kernel Nkhw Proc Proclist Shadow_proc Syscall_table Vfs Vmspace
