lib/kernel/syscall_table.ml: Addr Bytes Fault Int64 Ktypes Machine Nested_kernel Nkhw
