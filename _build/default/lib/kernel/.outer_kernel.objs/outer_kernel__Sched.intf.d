lib/kernel/sched.mli: Kernel Ktypes
