lib/kernel/mmu_backend.ml: Addr Costs Cr Hashtbl List Machine Nested_kernel Nkhw Page_table Phys_mem Pte
