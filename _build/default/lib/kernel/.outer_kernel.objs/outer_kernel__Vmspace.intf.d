lib/kernel/vmspace.mli: Addr Fault Frame_alloc Hashtbl Ktypes Machine Mmu_backend Nkhw
