lib/kernel/vmspace.mli: Addr Asid_pool Fault Frame_alloc Hashtbl Ktypes Machine Mmu_backend Nkhw
