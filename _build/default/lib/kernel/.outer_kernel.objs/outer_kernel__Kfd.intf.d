lib/kernel/kfd.mli: Ktypes Pipe Vfs
