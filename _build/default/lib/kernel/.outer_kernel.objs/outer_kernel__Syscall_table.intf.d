lib/kernel/syscall_table.mli: Addr Ktypes Machine Nested_kernel Nkhw
