lib/kernel/guarded_alloc.ml: Addr Bytes Frame_alloc Int64 Ktypes Machine Nested_kernel Nkhw
