lib/kernel/pipe.ml: Addr Bytes Char Costs Frame_alloc Ktypes Machine Nkhw Phys_mem
