lib/kernel/asid_pool.ml: Array Machine Nkhw
