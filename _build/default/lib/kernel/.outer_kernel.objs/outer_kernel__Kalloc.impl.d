lib/kernel/kalloc.ml: Addr Costs Frame_alloc Machine Nkhw Phys_mem
