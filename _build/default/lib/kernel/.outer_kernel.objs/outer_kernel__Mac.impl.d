lib/kernel/mac.ml: Addr Bytes Char Fault Frame_alloc Hashtbl Ktypes Machine Mmu Nested_kernel Nkhw Phys_mem
