lib/kernel/ktypes.mli:
