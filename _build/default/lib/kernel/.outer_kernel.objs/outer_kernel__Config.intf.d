lib/kernel/config.mli:
