lib/kernel/kalloc.mli: Addr Frame_alloc Machine Nkhw
