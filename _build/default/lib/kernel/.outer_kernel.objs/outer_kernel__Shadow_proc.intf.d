lib/kernel/shadow_proc.mli: Addr Ktypes Nested_kernel Nkhw
