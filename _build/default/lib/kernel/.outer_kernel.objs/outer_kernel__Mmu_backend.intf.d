lib/kernel/mmu_backend.mli: Addr Machine Nested_kernel Nkhw Pte
