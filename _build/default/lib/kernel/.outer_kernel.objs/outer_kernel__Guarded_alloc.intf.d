lib/kernel/guarded_alloc.mli: Addr Frame_alloc Ktypes Machine Nested_kernel Nkhw
