open Nkhw

(** Process control block (OCaml-side bookkeeping; the corresponding
    [allproc] node lives in simulated kernel memory). *)

type pstate = Running | Zombie | Reaped

type t = {
  pid : Ktypes.pid;
  mutable parent : Ktypes.pid;
  mutable pstate : pstate;
  vm : Vmspace.t;
  node_va : Addr.va;  (** this process's allproc node *)
  fds : (Ktypes.fd, Kfd.t) Hashtbl.t;
  mutable next_fd : int;
  sighandlers : (int, string) Hashtbl.t;  (** signal -> handler tag *)
  mutable exit_code : int option;
}

val make : pid:Ktypes.pid -> parent:Ktypes.pid -> vm:Vmspace.t -> node_va:Addr.va -> t
val add_fd : t -> Kfd.t -> Ktypes.fd
val fd_handle : t -> Ktypes.fd -> Kfd.t option
val drop_fd : t -> Ktypes.fd -> unit
val pp_state : Format.formatter -> pstate -> unit
