(** Attacks on the MMU protection state itself: the threats of the
    paper's sections 3.6 and 3.7. *)

val direct_pte_write : Attack.t
(** Store straight into the active PML4, bypassing the vMMU. *)

val rogue_cr3 : Attack.t
(** Craft page tables in writable memory and point CR3 at them. *)

val wp_disable_gate_jump : Attack.t
(** Jump into the exit gate's [mov %rax, %cr0] with a WP-clearing RAX;
    the gate's verify-and-loop must leave WP set (section 3.7). *)

val pg_disable_gate_jump : Attack.t
(** Same entry point, but clearing CR0.PG: paging off means the next
    fetch is interpreted physically, and the machine wedges with no
    protection bypass (Invariant I9). *)

val idt_overwrite : Attack.t
(** Redirect an IDT vector at attacker code (defeats I12 if
    writable). *)

val nk_stack_tamper : Attack.t
(** Overwrite the nested kernel's secure stack from outer-kernel
    context (the cross-CPU threat behind Invariant I13). *)
