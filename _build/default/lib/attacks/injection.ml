open Nkhw
open Outer_kernel

let callout_done = 99

(* Shellcode that clears CR0.WP and hands control back. *)
let wp_shellcode () =
  Insn.assemble_raw
    [
      Insn.Mov_from_cr (Insn.RAX, Insn.CR0);
      Insn.And_ri (Insn.RAX, lnot Cr.cr0_wp);
      Insn.Mov_to_cr (Insn.CR0, Insn.RAX);
      Insn.Callout callout_done;
    ]

(* A module whose instruction stream is benign, but whose 64-bit
   immediate embeds the bytes 0F 22 C0 (mov %rax, %cr0) at offset 5 of
   the instruction, followed by a callout opcode byte so the attacker
   regains control after the hidden instruction executes. *)
let gadget_module () =
  let hidden =
    (0x0F lsl 32) lor (0x22 lsl 40) lor (0xC0 lsl 48) lor (0xCD lsl 56)
  in
  let tail = Insn.assemble_raw [ Insn.Nop; Insn.Nop; Insn.Nop; Insn.Nop; Insn.Ret ] in
  let head = Insn.assemble_raw [ Insn.Mov_ri (Insn.RBX, hidden) ] in
  Bytes.cat head tail

let gadget_offset = 5 (* opcode byte + 4 immediate bytes *)

(* Run injected bytes on a native kernel: copy them into a fresh frame
   (native direct map is writable and executable) and jump. *)
let run_native_payload k code ~entry_off ~rax =
  let m = k.Kernel.machine in
  let frame = Frame_alloc.alloc_exn k.Kernel.falloc in
  Phys_mem.write_bytes m.Machine.mem (Addr.pa_of_frame frame) code;
  let cpu = m.Machine.cpu in
  Cpu_state.set cpu Insn.RAX rax;
  cpu.Cpu_state.rip <- Addr.kva_of_frame frame + entry_off;
  Exec.run ~fuel:50 m

let inject_wp_shellcode =
  {
    Attack.name = "inject-wp-shellcode";
    description = "load a kernel module that disables CR0.WP";
    paper_ref = "3.5";
    run =
      (fun k ->
        let code = wp_shellcode () in
        match k.Kernel.nk with
        | None ->
            let m = k.Kernel.machine in
            let stop = run_native_payload k code ~entry_off:0 ~rax:0 in
            if not (Cr.wp_enabled m.Machine.cr) then begin
              m.Machine.cr.Cr.cr0 <- m.Machine.cr.Cr.cr0 lor Cr.cr0_wp;
              Attack.Succeeded
                (Format.asprintf "module ran and cleared WP (%a)" Exec.pp_stop
                   stop)
            end
            else Attack.Blocked "shellcode ran but WP still set"
        | Some nk -> (
            let frames = [ Frame_alloc.alloc_exn k.Kernel.falloc ] in
            match Nested_kernel.Api.install_code nk ~frames code with
            | Error e ->
                Attack.Blocked
                  ("module rejected at load: "
                  ^ Nested_kernel.Nk_error.to_string e)
            | Ok () -> Attack.Succeeded "hostile module accepted"));
  }

let unaligned_gadget =
  {
    Attack.name = "unaligned-gadget";
    description =
      "hide mov-to-CR0 bytes inside an immediate and jump mid-instruction";
    paper_ref = "3.5 / 5.2";
    run =
      (fun k ->
        let code = gadget_module () in
        match k.Kernel.nk with
        | None ->
            let m = k.Kernel.machine in
            let rax = m.Machine.cr.Cr.cr0 land lnot Cr.cr0_wp in
            let stop =
              run_native_payload k code ~entry_off:gadget_offset ~rax
            in
            if not (Cr.wp_enabled m.Machine.cr) then begin
              m.Machine.cr.Cr.cr0 <- m.Machine.cr.Cr.cr0 lor Cr.cr0_wp;
              Attack.Succeeded
                (Format.asprintf
                   "hidden instruction executed at unaligned offset (%a)"
                   Exec.pp_stop stop)
            end
            else Attack.Blocked "gadget ran but WP still set"
        | Some nk -> (
            let frames = [ Frame_alloc.alloc_exn k.Kernel.falloc ] in
            match Nested_kernel.Api.install_code nk ~frames code with
            | Error e ->
                Attack.Blocked
                  ("unaligned pattern caught by the scanner: "
                  ^ Nested_kernel.Nk_error.to_string e)
            | Ok () -> Attack.Succeeded "gadget module accepted"));
  }

let patch_kernel_code =
  {
    Attack.name = "patch-kernel-code";
    description = "overwrite already-loaded, validated kernel module code";
    paper_ref = "3.5";
    run =
      (fun k ->
        let benign =
          Insn.assemble_raw [ Insn.Nop; Insn.Nop; Insn.Ret ]
        in
        let m = k.Kernel.machine in
        match k.Kernel.nk with
        | None -> (
            let frame = Frame_alloc.alloc_exn k.Kernel.falloc in
            Phys_mem.write_bytes m.Machine.mem (Addr.pa_of_frame frame) benign;
            match
              Machine.kwrite_bytes m (Addr.kva_of_frame frame) (wp_shellcode ())
            with
            | Ok () -> Attack.Succeeded "kernel code patched in place"
            | Error f ->
                Attack.Blocked (Format.asprintf "patch faulted (%a)" Fault.pp f))
        | Some nk -> (
            let frame = Frame_alloc.alloc_exn k.Kernel.falloc in
            match Nested_kernel.Api.install_code nk ~frames:[ frame ] benign with
            | Error e ->
                Attack.Blocked
                  ("benign module unexpectedly rejected: "
                  ^ Nested_kernel.Nk_error.to_string e)
            | Ok () -> (
                match
                  Machine.kwrite_bytes m (Addr.kva_of_frame frame)
                    (wp_shellcode ())
                with
                | Ok () -> Attack.Succeeded "validated code page overwritten"
                | Error f ->
                    Attack.Blocked
                      (Format.asprintf
                         "lifetime code integrity: patch faulted (%a)" Fault.pp
                         f))));
  }
