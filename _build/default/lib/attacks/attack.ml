open Outer_kernel

type outcome =
  | Succeeded of string
  | Blocked of string
  | Detected of string
  | Crashed of string

let defended = function
  | Succeeded _ -> false
  | Blocked _ | Detected _ | Crashed _ -> true

type t = {
  name : string;
  description : string;
  paper_ref : string;
  run : Kernel.t -> outcome;
}

let pp_outcome ppf = function
  | Succeeded m -> Format.fprintf ppf "SUCCEEDED: %s" m
  | Blocked m -> Format.fprintf ppf "blocked: %s" m
  | Detected m -> Format.fprintf ppf "detected: %s" m
  | Crashed m -> Format.fprintf ppf "crashed: %s" m
