(** Code-injection attacks, defeated by lifetime kernel code integrity
    (paper section 3.5). *)

val inject_wp_shellcode : Attack.t
(** Load a "kernel module" whose code body disables CR0.WP.  The
    nested kernel's load-time scan rejects it; a native kernel runs
    it. *)

val unaligned_gadget : Attack.t
(** Load a module whose {e visible} instructions are benign but whose
    immediate bytes hide a mov-to-CR0 at an unaligned offset, then
    jump into the middle of the instruction.  The scanner's
    every-byte-offset scan is what catches this. *)

val patch_kernel_code : Attack.t
(** Overwrite validated, already-executable kernel code in place. *)
