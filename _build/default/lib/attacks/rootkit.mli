(** Rootkit techniques from Kong's {e Designing BSD Rootkits}, as the
    paper's section 4 catalogs them: system-call hooking and direct
    kernel object manipulation (DKOM). *)

val syscall_hook : Attack.t
(** Overwrite a system-call table entry to point at attacker-chosen
    handler code.  Defeated only by the write-once table policy. *)

val syscall_hook_via_legit_path : Attack.t
(** Re-install a table entry through the kernel's own update path —
    on a write-once table the second write is denied. *)

val dkom_hide_process : Attack.t
(** Unlink a process from [allproc] with two pointer stores.  Succeeds
    mechanically everywhere; the shadow-list configuration still sees
    the process. *)

val dkom_scrub_shadow : Attack.t
(** The stronger rootkit: also remove the shadow-list entry via
    [nk_write].  The write-logging policy records it, so forensics
    reconstructs the hidden pid. *)
