open Nkhw
open Outer_kernel

let rogue_handler_id = 6666
let rogue_getpid_value = 31337

(* Spawn a victim process the rootkit wants to hide. *)
let spawn_malware k =
  let init = Kernel.current_proc k in
  match Kernel.fork_proc k init with
  | Ok pid -> Ok pid
  | Error e -> Error (Ktypes.errno_to_string e)

let visible_in_ps k pid = List.mem_assoc pid (Kernel.ps k)

let syscall_hook =
  {
    Attack.name = "syscall-table-hook";
    description =
      "overwrite the getpid entry of the system-call table with a rogue \
       handler id using a plain kernel store";
    paper_ref = "4.1.1";
    run =
      (fun k ->
        let m = k.Kernel.machine in
        Kernel.register_handler k rogue_handler_id (fun _ _ _ ->
            Ok rogue_getpid_value);
        let entry = Syscall_table.entry_va k.Kernel.syscall_table Ktypes.sys_getpid in
        match Machine.kwrite_u64 m entry rogue_handler_id with
        | Error f ->
            Attack.Blocked
              (Format.asprintf "store to syscall table faulted (%a)" Fault.pp f)
        | Ok () -> (
            let p = Kernel.current_proc k in
            match Syscalls.getpid k p with
            | Ok v when v = rogue_getpid_value ->
                Attack.Succeeded "getpid dispatches to rootkit handler"
            | Ok _ | Error _ ->
                Attack.Blocked "table store landed but dispatch unaffected"));
  }

let syscall_hook_via_legit_path =
  {
    Attack.name = "syscall-hook-legit-path";
    description =
      "re-install the getpid table entry through the kernel's own \
       Syscall_table.set path (second write of the same entry)";
    paper_ref = "4.1.1";
    run =
      (fun k ->
        Kernel.register_handler k rogue_handler_id (fun _ _ _ ->
            Ok rogue_getpid_value);
        match
          Kernel.install_syscall k ~sysno:Ktypes.sys_getpid
            ~handler_id:rogue_handler_id
        with
        | Error msg -> Attack.Blocked ("table update rejected: " ^ msg)
        | Ok () -> (
            let p = Kernel.current_proc k in
            match Syscalls.getpid k p with
            | Ok v when v = rogue_getpid_value ->
                Attack.Succeeded "getpid rebound through the legitimate path"
            | Ok _ | Error _ -> Attack.Blocked "rebinding ineffective"));
  }

let dkom_hide_process =
  {
    Attack.name = "dkom-hide-process";
    description =
      "unlink a process from allproc with two pointer stores so ps no \
       longer reports it";
    paper_ref = "4.1.3";
    run =
      (fun k ->
        match spawn_malware k with
        | Error e -> Attack.Blocked ("could not spawn victim: " ^ e)
        | Ok pid -> (
            let node =
              match Proclist.find k.Kernel.allproc pid with
              | Some n -> n
              | None -> 0
            in
            match
              Proclist.unlink_raw k.Kernel.machine
                ~head_va:(Proclist.head_va k.Kernel.allproc)
                ~node
            with
            | Error f ->
                Attack.Blocked
                  (Format.asprintf "unlink stores faulted (%a)" Fault.pp f)
            | Ok () ->
                if visible_in_ps k pid then
                  Attack.Blocked "process still visible in ps"
                else (
                  match Kernel.ps_shadow k with
                  | Some shadow_pids when List.mem pid shadow_pids ->
                      Attack.Detected
                        (Printf.sprintf
                           "hidden from allproc, but the shadow list still \
                            reports pid %d"
                           pid)
                  | Some _ | None ->
                      Attack.Succeeded
                        (Printf.sprintf "pid %d hidden from ps" pid))));
  }

let dkom_scrub_shadow =
  {
    Attack.name = "dkom-scrub-shadow";
    description =
      "hide a process from allproc and additionally remove its shadow-list \
       entry through nk_write";
    paper_ref = "4.1.3";
    run =
      (fun k ->
        match spawn_malware k with
        | Error e -> Attack.Blocked ("could not spawn victim: " ^ e)
        | Ok pid -> (
            let node =
              match Proclist.find k.Kernel.allproc pid with Some n -> n | None -> 0
            in
            ignore
              (Proclist.unlink_raw k.Kernel.machine
                 ~head_va:(Proclist.head_va k.Kernel.allproc)
                 ~node);
            match k.Kernel.shadow with
            | None ->
                if visible_in_ps k pid then
                  Attack.Blocked "process still visible in ps"
                else Attack.Succeeded (Printf.sprintf "pid %d hidden" pid)
            | Some shadow -> (
                (* The only way to alter the shadow list is the logged
                   nk_write path. *)
                match Shadow_proc.on_remove shadow pid with
                | Error e ->
                    Attack.Blocked ("shadow scrub rejected: " ^ e)
                | Ok () ->
                    let in_shadow =
                      List.mem pid (Shadow_proc.pids shadow)
                    in
                    let removals = Shadow_proc.removal_history shadow in
                    let logged = List.mem_assoc pid removals in
                    let legit = List.mem pid k.Kernel.legit_exits in
                    if in_shadow then
                      Attack.Blocked "shadow entry survived the scrub"
                    else if logged && not legit then
                      Attack.Detected
                        (Printf.sprintf
                           "shadow scrub of pid %d is in the write log with \
                            no matching exit"
                           pid)
                    else
                      Attack.Succeeded
                        (Printf.sprintf "pid %d scrubbed without trace" pid))));
  }
