open Outer_kernel

(** Common attack vocabulary.

    Every attack runs against a booted kernel (in any configuration)
    and reports how far it got.  The same attack code runs on the
    native baseline — where it generally succeeds — and on the nested
    kernel configurations, where it must be blocked, detected or
    rendered harmless. *)

type outcome =
  | Succeeded of string  (** the attacker achieved the goal *)
  | Blocked of string
      (** a protection fault or nested-kernel rejection stopped it *)
  | Detected of string
      (** the write went through but left tamper-evident traces *)
  | Crashed of string
      (** the machine wedged; the attacker gained nothing *)

val defended : outcome -> bool
(** True for every outcome except [Succeeded]. *)

type t = {
  name : string;
  description : string;
  paper_ref : string;  (** section of the paper motivating the attack *)
  run : Kernel.t -> outcome;
}

val pp_outcome : Format.formatter -> outcome -> unit
