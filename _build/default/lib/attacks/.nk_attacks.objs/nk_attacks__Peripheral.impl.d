lib/attacks/peripheral.ml: Addr Attack Bytes Cr Dma Fault Format Kernel Machine Nested_kernel Nkhw Outer_kernel Phys_mem Smm Syscalls
