lib/attacks/rootkit.mli: Attack
