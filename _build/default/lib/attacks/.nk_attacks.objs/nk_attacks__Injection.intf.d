lib/attacks/injection.mli: Attack
