lib/attacks/extensions.ml: Addr Attack Fault Format Frame_alloc Guarded_alloc Kernel Ktypes Mac Machine Mmu Mmu_backend Nested_kernel Nkhw Outer_kernel Page_table Pte Syscall_table Syscalls
