lib/attacks/rootkit.ml: Attack Fault Format Kernel Ktypes List Machine Nkhw Outer_kernel Printf Proclist Shadow_proc Syscall_table Syscalls
