lib/attacks/all.mli: Attack Config Kernel Outer_kernel
