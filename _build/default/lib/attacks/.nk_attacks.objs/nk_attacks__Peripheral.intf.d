lib/attacks/peripheral.mli: Attack
