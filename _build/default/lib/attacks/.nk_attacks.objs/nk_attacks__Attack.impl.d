lib/attacks/attack.ml: Format Kernel Outer_kernel
