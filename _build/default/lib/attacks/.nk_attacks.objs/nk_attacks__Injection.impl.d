lib/attacks/injection.ml: Addr Attack Bytes Cpu_state Cr Exec Fault Format Frame_alloc Insn Kernel Machine Nested_kernel Nkhw Outer_kernel Phys_mem
