lib/attacks/extensions.mli: Attack
