lib/attacks/all.ml: Attack Config Extensions Injection List Mmu_attacks Outer_kernel Peripheral Rootkit
