lib/attacks/mmu_attacks.ml: Addr Attack Cpu_state Cr Exec Fault Format Frame_alloc Insn Kernel Machine Mmu_backend Nested_kernel Nkhw Outer_kernel Page_table Phys_mem
