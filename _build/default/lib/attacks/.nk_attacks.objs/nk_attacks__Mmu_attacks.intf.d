lib/attacks/mmu_attacks.mli: Attack
