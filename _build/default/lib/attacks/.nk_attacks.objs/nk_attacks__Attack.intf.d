lib/attacks/attack.mli: Format Kernel Outer_kernel
