(** Attacks from outside the CPU's normal store path, plus abuses of
    the write-protection service itself. *)

val dma_to_page_tables : Attack.t
(** Device DMA aimed at the active PML4 (paper section 2.5). *)

val smm_handler_abuse : Attack.t
(** Install an SMI handler that patches protected memory with paging
    semantics off (Invariant I10). *)

val log_tamper : Attack.t
(** Scrub the protected system-call log: direct stores fault and the
    append-only policy refuses rewinds (paper section 4.1.2). *)

val free_then_write : Attack.t
(** [nk_free] a protected region, then store to it: freed protected
    memory must stay protected (paper section 2.4). *)

val nk_write_overflow : Attack.t
(** Use a legitimate write descriptor to write beyond its bounds into
    the adjacent protected object. *)
