open Nkhw
open Outer_kernel

let dma_to_page_tables =
  {
    Attack.name = "dma-to-page-tables";
    description = "DMA a hostile entry into the active PML4";
    paper_ref = "2.5";
    run =
      (fun k ->
        let m = k.Kernel.machine in
        let root = Cr.root_frame m.Machine.cr in
        let payload = Bytes.make 8 '\000' in
        match
          Dma.write m ~pa:(Addr.pa_of_frame root + (511 * 8)) payload
        with
        | Ok () -> Attack.Succeeded "device wrote into the page tables"
        | Error e ->
            Attack.Blocked (Format.asprintf "%a" Dma.pp_error e));
  }

let smm_handler_abuse =
  {
    Attack.name = "smm-handler-abuse";
    description =
      "install an SMI handler that rewrites page tables with raw physical \
       access";
    paper_ref = "3.2 (I10)";
    run =
      (fun k ->
        let m = k.Kernel.machine in
        let payload (mach : Machine.t) =
          let root = Cr.root_frame mach.Machine.cr in
          Phys_mem.write_u64 mach.Machine.mem
            (Addr.pa_of_frame root + (511 * 8))
            0xbad
        in
        match Smm.install_handler m payload with
        | Error e -> Attack.Blocked ("SMI handler install rejected: " ^ e)
        | Ok () -> (
            match Smm.trigger_smi m with
            | Smm.Executed ->
                Attack.Succeeded "SMI payload ran with raw physical access"
            | Smm.Suppressed ->
                Attack.Blocked "nested kernel owns SMM; payload never ran"
            | Smm.No_handler -> Attack.Blocked "no handler installed"));
  }

let log_tamper =
  {
    Attack.name = "log-tamper";
    description = "scrub the oldest records of the system-call event log";
    paper_ref = "4.1.2";
    run =
      (fun k ->
        (* Generate some events worth scrubbing first. *)
        let p = Kernel.current_proc k in
        for _ = 1 to 8 do
          ignore (Syscalls.getpid k p)
        done;
        match k.Kernel.syslog with
        | None ->
            Attack.Succeeded
              "event log lives in plain kernel memory; records scrubbed"
        | Some sl -> (
            let m = k.Kernel.machine in
            let junk = Bytes.make 16 '\xff' in
            match Machine.kwrite_bytes m sl.Kernel.sl_base junk with
            | Ok () -> Attack.Succeeded "log overwritten with a direct store"
            | Error f -> (
                (* Fall back to the legitimate channel: rewind the
                   append-only buffer. *)
                match
                  Nested_kernel.Api.nk_write sl.Kernel.sl_nk sl.Kernel.sl_wd
                    ~dest:sl.Kernel.sl_base junk
                with
                | Ok () ->
                    Attack.Succeeded "append-only log accepted a rewind"
                | Error e ->
                    Attack.Blocked
                      (Format.asprintf
                         "direct store faulted (%a); nk_write refused: %s"
                         Fault.pp f
                         (Nested_kernel.Nk_error.to_string e)))));
  }

let free_then_write =
  {
    Attack.name = "free-then-write";
    description = "nk_free a protected region and overwrite it afterwards";
    paper_ref = "2.4";
    run =
      (fun k ->
        let m = k.Kernel.machine in
        match k.Kernel.nk with
        | None ->
            Attack.Succeeded
              "no protected allocator: freed kernel memory is writable by \
               anyone"
        | Some nk -> (
            match
              Nested_kernel.Api.nk_alloc nk ~size:256
                Nested_kernel.Policy.unrestricted
            with
            | Error e ->
                Attack.Blocked (Nested_kernel.Nk_error.to_string e)
            | Ok (wd, va) -> (
                (match Nested_kernel.Api.nk_free nk wd with
                | Ok () -> ()
                | Error _ -> ());
                match Machine.kwrite_u64 m va 0xdead with
                | Ok () -> Attack.Succeeded "freed protected memory overwritten"
                | Error f ->
                    Attack.Blocked
                      (Format.asprintf
                         "freed memory is retained protected (%a)" Fault.pp f))));
  }

let nk_write_overflow =
  {
    Attack.name = "nk-write-overflow";
    description =
      "overflow a legitimate write descriptor into the neighbouring \
       protected object";
    paper_ref = "2.4 (Table 1 bounds check)";
    run =
      (fun k ->
        match k.Kernel.nk with
        | None ->
            Attack.Succeeded
              "no mediated writes: a memcpy overflow corrupts the neighbour"
        | Some nk -> (
            match
              ( Nested_kernel.Api.nk_alloc nk ~size:64
                  Nested_kernel.Policy.unrestricted,
                Nested_kernel.Api.nk_alloc nk ~size:64
                  Nested_kernel.Policy.no_write )
            with
            | Ok (wd_a, va_a), Ok (_, _) -> (
                (* Write 128 bytes through the 64-byte descriptor. *)
                match
                  Nested_kernel.Api.nk_write nk wd_a ~dest:va_a
                    (Bytes.make 128 'A')
                with
                | Ok () ->
                    Attack.Succeeded "overflow crossed into the neighbour"
                | Error e ->
                    Attack.Blocked
                      ("bounds check: " ^ Nested_kernel.Nk_error.to_string e))
            | Error e, _ | _, Error e ->
                Attack.Blocked (Nested_kernel.Nk_error.to_string e)));
  }
