open Outer_kernel

(** The full attack registry, used by examples, tests and the
    evaluation harness. *)

val attacks : Attack.t list

val expected_defended : Config.t -> string -> bool
(** Ground truth: is this attack supposed to be stopped (blocked,
    detected or crashed-harmless) under the given configuration?  The
    test suite asserts the registry matches this matrix; note that the
    base nested kernel intentionally does {e not} stop the
    policy-specific attacks (syscall hooking without the write-once
    table, DKOM without the shadow list) — exactly as in the paper. *)

val run_all : Kernel.t -> (Attack.t * Attack.outcome) list
