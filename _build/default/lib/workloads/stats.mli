(** Small statistics and table-formatting helpers for the evaluation
    harness. *)

val mean : float list -> float
val stddev : float list -> float

val pct_overhead : native:float -> sys:float -> float
(** [(sys - native) / native * 100] — positive means slower. *)

val relative : native:float -> sys:float -> float
(** [sys /. native]. *)

type table = {
  title : string;
  columns : string list;  (** first column is the row label *)
  rows : string list list;
  notes : string list;
}

val render : Format.formatter -> table -> unit
val print : table -> unit
val f2 : float -> string
val f1 : float -> string

val bar_chart :
  title:string ->
  ?max_value:float ->
  (string * float) list ->
  Format.formatter ->
  unit
(** Horizontal ASCII bars, labelled with their values — used to render
    the paper's figures in terminal output. *)

val print_bar_chart : title:string -> ?max_value:float -> (string * float) list -> unit
