open Nkhw
open Outer_kernel

type result = {
  config : Config.t;
  elapsed_s : float;
  sys_share_pct : float;
  overhead_pct : float;
}

let compile_cycles = 4_300_000 (* user CPU per translation unit *)
let read_block = 64 * 1024

let ok = function
  | Ok v -> v
  | Error e -> failwith ("kbuild: " ^ Ktypes.errno_to_string e)

let compile_unit k (make : Proc.t) ~index =
  let cc_pid = ok (Syscalls.fork k make) in
  let cc = Option.get (Kernel.proc k cc_pid) in
  ok (Result.map_error (fun _ -> Ktypes.Esrch) (Kernel.switch_to k cc_pid));
  ignore (ok (Syscalls.execve k cc ~text_pages:48 ~data_pages:16 "/bin/cc"));
  (* Source and headers. *)
  let read_file path =
    let fd = ok (Syscalls.open_ k cc path) in
    let rec drain () =
      let got = ok (Syscalls.read k cc fd read_block) in
      if got = read_block then drain ()
    in
    drain ();
    ignore (ok (Syscalls.close k cc fd))
  in
  read_file (Printf.sprintf "/src/unit%d.c" index);
  List.iter read_file [ "/src/sys.h"; "/src/param.h"; "/src/proc.h" ];
  (* The compile itself: user CPU, plus some heap growth faults. *)
  Machine.charge k.Kernel.machine compile_cycles;
  let heap =
    ok (Syscalls.mmap k cc ~len:(24 * Addr.page_size) ~rw:true ~populate:false ())
  in
  for i = 0 to 23 do
    ok (Kernel.touch_user k cc (heap + (i * Addr.page_size)) Fault.Write)
  done;
  (* Emit the object. *)
  let out = Printf.sprintf "/obj/unit%d.o" index in
  let fd = ok (Syscalls.open_ k cc out) in
  ignore (ok (Syscalls.write k cc fd (Bytes.create (32 * 1024))));
  ignore (ok (Syscalls.close k cc fd));
  ignore (ok (Syscalls.exit_ k cc 0));
  ok (Result.map_error (fun _ -> Ktypes.Esrch) (Kernel.switch_to k make.Proc.pid));
  ignore (ok (Syscalls.wait k make))

let link k (make : Proc.t) ~units =
  let ld_pid = ok (Syscalls.fork k make) in
  let ld = Option.get (Kernel.proc k ld_pid) in
  ok (Result.map_error (fun _ -> Ktypes.Esrch) (Kernel.switch_to k ld_pid));
  ignore (ok (Syscalls.execve k ld ~text_pages:32 ~data_pages:16 "/bin/cc"));
  for i = 0 to units - 1 do
    let fd = ok (Syscalls.open_ k ld (Printf.sprintf "/obj/unit%d.o" i)) in
    ignore (ok (Syscalls.read k ld fd read_block));
    ignore (ok (Syscalls.close k ld fd))
  done;
  Machine.charge k.Kernel.machine (compile_cycles / 2);
  let fd = ok (Syscalls.open_ k ld "/obj/kernel") in
  ignore (ok (Syscalls.write k ld fd (Bytes.create (256 * 1024))));
  ignore (ok (Syscalls.close k ld fd));
  ignore (ok (Syscalls.exit_ k ld 0));
  ok (Result.map_error (fun _ -> Ktypes.Esrch) (Kernel.switch_to k make.Proc.pid));
  ignore (ok (Syscalls.wait k make))

let measure config ~units =
  let files =
    ("/src/sys.h", 48 * 1024)
    :: ("/src/param.h", 16 * 1024)
    :: ("/src/proc.h", 24 * 1024)
    :: List.init units (fun i -> (Printf.sprintf "/src/unit%d.c" i, 96 * 1024))
  in
  let k = Os.boot_with_files config files in
  let m = k.Kernel.machine in
  let make = Kernel.current_proc k in
  ignore (ok (Syscalls.execve k make ~text_pages:12 ~data_pages:6 "/bin/sh"));
  (* Warm the system with one unit, then build from clean. *)
  compile_unit k make ~index:0;
  let before = Clock.cycles m.Machine.clock in
  let user_before = ref 0 in
  ignore user_before;
  for i = 0 to units - 1 do
    compile_unit k make ~index:i
  done;
  link k make ~units;
  let cycles = Clock.cycles m.Machine.clock - before in
  let user_cycles = (units * compile_cycles) + (compile_cycles / 2) in
  let sys_cycles = cycles - user_cycles in
  ( Costs.cycles_to_s cycles,
    float_of_int sys_cycles /. float_of_int cycles *. 100. )

let run ?(units = 24) () =
  let native_s, native_share = measure Config.Native ~units in
  List.map
    (fun config ->
      let elapsed_s, sys_share_pct =
        if config = Config.Native then (native_s, native_share)
        else measure config ~units
      in
      {
        config;
        elapsed_s;
        sys_share_pct;
        overhead_pct = Stats.pct_overhead ~native:native_s ~sys:elapsed_s;
      })
    Config.all

let paper =
  [
    (Config.Perspicuos, 2.6);
    (Config.Append_only, 3.0);
    (Config.Write_once, 2.6);
    (Config.Write_log, 2.7);
  ]

let to_table results =
  {
    Stats.title = "Table 4: kernel build, overhead over native";
    columns = [ "system"; "elapsed (ms)"; "sys share %"; "overhead %"; "paper %" ];
    rows =
      List.map
        (fun r ->
          [
            Config.name r.config;
            Printf.sprintf "%.2f" (r.elapsed_s *. 1000.);
            Stats.f1 r.sys_share_pct;
            Stats.f2 r.overhead_pct;
            (match List.assoc_opt r.config paper with
            | Some v -> Stats.f1 v
            | None -> "-");
          ])
        results;
    notes =
      [
        "user compute per translation unit calibrated so kernel work is \
         amortized as in a real compile (a few percent of elapsed time)";
      ];
  }
