lib/workloads/apache.ml: Clock Config Costs Float Kernel Ktypes List Machine Nkhw Os Outer_kernel Printf Proc Stats Syscalls
