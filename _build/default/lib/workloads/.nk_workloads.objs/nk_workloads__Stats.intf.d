lib/workloads/stats.mli: Format
