lib/workloads/sshd.mli: Config Outer_kernel Stats
