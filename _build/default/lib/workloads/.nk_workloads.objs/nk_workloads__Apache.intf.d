lib/workloads/apache.mli: Config Outer_kernel Stats
