lib/workloads/lmbench.ml: Addr Clock Config Costs Fault Kernel Ktypes List Machine Nkhw Option Os Outer_kernel Printf Proc Result Stats Syscalls Vmspace
