lib/workloads/kbuild.mli: Config Outer_kernel Stats
