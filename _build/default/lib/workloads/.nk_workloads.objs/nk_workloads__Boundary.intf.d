lib/workloads/boundary.mli: Stats
