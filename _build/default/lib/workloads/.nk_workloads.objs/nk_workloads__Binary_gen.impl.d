lib/workloads/binary_gen.ml: Array Cpu_state Exec Format Insn List Machine Nkhw Phys_mem Printf
