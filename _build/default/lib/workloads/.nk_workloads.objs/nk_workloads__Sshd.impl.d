lib/workloads/sshd.ml: Clock Config Costs Kernel Ktypes List Machine Nkhw Option Os Outer_kernel Printf Proc Result Stats Syscalls
