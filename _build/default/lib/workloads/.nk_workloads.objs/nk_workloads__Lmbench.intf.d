lib/workloads/lmbench.mli: Config Kernel Outer_kernel Proc Stats
