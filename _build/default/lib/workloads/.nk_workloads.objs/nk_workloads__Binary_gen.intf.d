lib/workloads/binary_gen.mli: Insn Nkhw
