lib/workloads/kbuild.ml: Addr Bytes Clock Config Costs Fault Kernel Ktypes List Machine Nkhw Option Os Outer_kernel Printf Proc Result Stats Syscalls
