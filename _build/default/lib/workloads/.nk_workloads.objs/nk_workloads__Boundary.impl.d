lib/workloads/boundary.ml: Clock Config Costs Kernel Machine Nested_kernel Nkhw Option Os Outer_kernel Printf Stats
