lib/workloads/stats.ml: Float Format List Printf String
