let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

let pct_overhead ~native ~sys = (sys -. native) /. native *. 100.
let relative ~native ~sys = sys /. native

type table = {
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let render ppf t =
  let widths =
    List.fold_left
      (fun acc row ->
        List.mapi
          (fun i cell ->
            let cur = try List.nth acc i with _ -> 0 in
            max cur (String.length cell))
          row)
      (List.map String.length t.columns)
      t.rows
  in
  let pad i cell =
    let w = try List.nth widths i with _ -> String.length cell in
    if i = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell
  in
  let line row = String.concat "  " (List.mapi pad row) in
  Format.fprintf ppf "@.== %s ==@." t.title;
  Format.fprintf ppf "%s@." (line t.columns);
  Format.fprintf ppf "%s@."
    (String.make (String.length (line t.columns)) '-');
  List.iter (fun row -> Format.fprintf ppf "%s@." (line row)) t.rows;
  List.iter (fun n -> Format.fprintf ppf "  note: %s@." n) t.notes

let print t = render Format.std_formatter t
let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x

let bar_chart ~title ?max_value rows ppf =
  let width = 46 in
  let peak =
    match max_value with
    | Some v -> v
    | None -> List.fold_left (fun acc (_, v) -> Float.max acc v) 0.01 rows
  in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  Format.fprintf ppf "@.-- %s --@." title;
  List.iter
    (fun (label, v) ->
      let n =
        max 0 (min width (int_of_float (Float.round (v /. peak *. float_of_int width))))
      in
      Format.fprintf ppf "%-*s |%s%s %.2f@." label_w label (String.make n '#')
        (String.make (width - n) ' ')
        v)
    rows

let print_bar_chart ~title ?max_value rows =
  bar_chart ~title ?max_value rows Format.std_formatter
