open Nkhw
open Outer_kernel

type point = {
  size_kb : int;
  native_mb_s : float;
  relative : (Config.t * float) list;
}

let sizes_kb = [ 1; 4; 16; 64; 256; 1024; 4096; 16384 ]

let block = 8 * 1024
let session_setup_cycles = 150_000
(* Residual session establishment on an already-open connection:
   user-auth checks, pty/env setup, shell startup.  The heavyweight
   asymmetric key exchange happens once per ssh connection and is not
   on the per-file path. *)
let cipher_cycles_per_byte = 2.5 (* AES-CTR + MAC on the client-era CPU *)
let wire_bytes_per_sec = 112.0e6 (* 1 Gbps minus framing *)

let ok = function
  | Ok v -> v
  | Error e -> failwith ("sshd: " ^ Ktypes.errno_to_string e)

(* One complete transfer; returns nothing, all costs land on the
   simulated clock. *)
let transfer_once k (parent : Proc.t) ~path ~size =
  (* Connection phase: sshd forks the session child which execs the
     shell/scp sink. *)
  let child_pid = ok (Syscalls.fork k parent) in
  let child = Option.get (Kernel.proc k child_pid) in
  ok (Result.map_error (fun _ -> Ktypes.Esrch) (Kernel.switch_to k child_pid));
  ignore (ok (Syscalls.execve k child ~text_pages:12 ~data_pages:6 "/bin/sh"));
  (* Session setup chatter: pty, env, channel negotiation. *)
  Machine.charge k.Kernel.machine session_setup_cycles;
  for _ = 1 to 6 do
    ignore (ok (Syscalls.getpid k child))
  done;
  (* Streaming phase. *)
  let fd = ok (Syscalls.open_ k child path) in
  let remaining = ref size in
  while !remaining > 0 do
    let n = min block !remaining in
    let got = ok (Syscalls.read k child fd n) in
    (* Encrypt and MAC the block (userspace CPU). *)
    Machine.charge k.Kernel.machine
      (int_of_float (cipher_cycles_per_byte *. float_of_int got));
    (* Socket send: one syscall boundary plus the kernel copy of the
       block into the socket buffer. *)
    ignore (ok (Syscalls.getpid k child));
    Machine.charge k.Kernel.machine
      (k.Kernel.machine.Machine.costs.Costs.byte_copy_x8 * ((got + 7) / 8));
    remaining := !remaining - got
  done;
  ignore (ok (Syscalls.close k child fd));
  ignore (ok (Syscalls.exit_ k child 0));
  ok (Result.map_error (fun _ -> Ktypes.Esrch) (Kernel.switch_to k parent.Proc.pid));
  ignore (ok (Syscalls.wait k parent))

let measure_config config ~transfers ~size =
  let path = "/srv/file" in
  let k = Os.boot_with_files config [ (path, size) ] in
  let m = k.Kernel.machine in
  let parent = Kernel.current_proc k in
  (* socket sink fd for the write syscalls *)
  transfer_once k parent ~path ~size;
  (* warm-up transfer above; measure the rest *)
  let before = Clock.cycles m.Machine.clock in
  for _ = 1 to transfers do
    transfer_once k parent ~path ~size
  done;
  let cpu_s =
    Costs.cycles_to_s (Clock.cycles m.Machine.clock - before)
    /. float_of_int transfers
  in
  (* scp-style half-duplex: wire time adds to the CPU time. *)
  let wire_s = float_of_int size /. wire_bytes_per_sec in
  let total_s = cpu_s +. wire_s in
  float_of_int size /. total_s /. 1.0e6 (* MB/s *)

let nested_configs =
  [ Config.Perspicuos; Config.Append_only; Config.Write_once; Config.Write_log ]

let run ?(transfers = 6) () =
  List.map
    (fun size_kb ->
      let size = size_kb * 1024 in
      let native = measure_config Config.Native ~transfers ~size in
      let relative =
        List.map
          (fun config ->
            (config, measure_config config ~transfers ~size /. native))
          nested_configs
      in
      { size_kb; native_mb_s = native; relative })
    sizes_kb

let paper_shape =
  [
    (1, 0.80);
    (4, 0.88);
    (16, 0.94);
    (64, 0.98);
    (256, 0.99);
    (1024, 1.00);
    (4096, 1.00);
    (16384, 1.00);
  ]

let to_table points =
  {
    Stats.title = "Figure 5: SSHD bandwidth relative to native (1 Gbps link)";
    columns =
      "file size (KB)" :: "native MB/s"
      :: List.map Config.name nested_configs
      @ [ "paper(perspicuos)" ];
    rows =
      List.map
        (fun p ->
          string_of_int p.size_kb
          :: Printf.sprintf "%.1f" p.native_mb_s
          :: List.map (fun (_, r) -> Stats.f2 r) p.relative
          @ [
              (match List.assoc_opt p.size_kb paper_shape with
              | Some v -> Stats.f2 v
              | None -> "-");
            ])
        points;
    notes = [ "paper column read off Figure 5 (approximate)" ];
  }
