open Nkhw
open Outer_kernel

type point = {
  size_kb : int;
  native_mb_s : float;
  relative : (Config.t * float) list;
  cpu_overhead_pct : float;
}

let sizes_kb =
  [ 1; 4; 16; 64; 256; 1024; 4096; 16384; 65536; 262144; 1048576 ]

let concurrency = 32
let wire_bytes_per_sec = 112.0e6
let per_request_rtt_s = 120.0e-6 (* connection turn-around on the LAN *)
let sendfile_block = 64 * 1024

let ok = function
  | Ok v -> v
  | Error e -> failwith ("apache: " ^ Ktypes.errno_to_string e)

let request_counter = ref 0

let serve_once k (worker : Proc.t) ~path ~size =
  (* accept(2) and request parse *)
  Machine.charge k.Kernel.machine 1500;
  ignore (ok (Syscalls.getpid k worker));
  (* Occasionally the worker recycles its scratch buffers: a demand-
     paged allocation whose faults are the only vMMU traffic on the
     serving path. *)
  incr request_counter;
  if !request_counter mod 16 = 0 then begin
    let buf =
      ok
        (Syscalls.mmap k worker ~len:(4 * Nkhw.Addr.page_size) ~rw:true
           ~populate:false ())
    in
    for i = 0 to 3 do
      ok (Kernel.touch_user k worker (buf + (i * Nkhw.Addr.page_size)) Nkhw.Fault.Write)
    done;
    ignore (ok (Syscalls.munmap k worker buf))
  end;
  let fd = ok (Syscalls.open_ k worker path) in
  let remaining = ref size in
  while !remaining > 0 do
    let n = min sendfile_block !remaining in
    let got = ok (Syscalls.read k worker fd n) in
    (* zero-copy-ish send: DMA setup per block *)
    Machine.charge k.Kernel.machine 900;
    remaining := !remaining - got
  done;
  ignore (ok (Syscalls.close k worker fd))

let measure_cpu config ~requests ~size =
  let path = "/srv/doc" in
  let k = Os.boot_with_files config [ (path, size) ] in
  let m = k.Kernel.machine in
  let worker = Kernel.current_proc k in
  serve_once k worker ~path ~size;
  let before = Clock.cycles m.Machine.clock in
  for _ = 1 to requests do
    serve_once k worker ~path ~size
  done;
  Costs.cycles_to_s (Clock.cycles m.Machine.clock - before)

let bandwidth ~requests ~size ~cpu_s =
  let total_bytes = float_of_int (requests * size) in
  let wire_s = total_bytes /. wire_bytes_per_sec in
  let rtt_s =
    float_of_int requests *. per_request_rtt_s /. float_of_int concurrency
  in
  (* The server core overlaps the network; whichever resource is
     saturated bounds throughput. *)
  let elapsed = Float.max (wire_s +. rtt_s) cpu_s in
  total_bytes /. elapsed /. 1.0e6

let nested_configs =
  [ Config.Perspicuos; Config.Append_only; Config.Write_once; Config.Write_log ]

let run ?(requests = 64) () =
  List.map
    (fun size_kb ->
      let size = size_kb * 1024 in
      (* Keep the total transferred volume bounded for huge files. *)
      let requests = max 4 (min requests (16384 / max 1 (size_kb / 64))) in
      let native_cpu = measure_cpu Config.Native ~requests ~size in
      let native = bandwidth ~requests ~size ~cpu_s:native_cpu in
      let perspicuos_cpu =
        measure_cpu Config.Perspicuos ~requests ~size
      in
      let relative =
        List.map
          (fun config ->
            let cpu_s =
              if config = Config.Perspicuos then perspicuos_cpu
              else measure_cpu config ~requests ~size
            in
            (config, bandwidth ~requests ~size ~cpu_s /. native))
          nested_configs
      in
      {
        size_kb;
        native_mb_s = native;
        relative;
        cpu_overhead_pct =
          Stats.pct_overhead ~native:native_cpu ~sys:perspicuos_cpu;
      })
    sizes_kb

let to_table points =
  {
    Stats.title =
      "Figure 6: Apache (ab, 32 concurrent) bandwidth relative to native";
    columns =
      "file size (KB)" :: "native MB/s"
      :: List.map Config.name nested_configs
      @ [ "hidden CPU ovh %" ];
    rows =
      List.map
        (fun p ->
          string_of_int p.size_kb
          :: Printf.sprintf "%.1f" p.native_mb_s
          :: List.map (fun (_, r) -> Stats.f2 r) p.relative
          @ [ Stats.f1 p.cpu_overhead_pct ])
        points;
    notes =
      [
        "paper reports overheads within measurement stddev at all sizes";
        "hidden CPU ovh: extra server CPU absorbed by network overlap";
      ];
  }
