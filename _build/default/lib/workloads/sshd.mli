open Outer_kernel

(** OpenSSH file-transfer model (paper Figure 5).

    Each transfer runs a per-connection phase (fork+exec of the
    session child plus session syscalls — the kernel-heavy part the
    nested kernel taxes) and a streaming phase (8 KiB blocks: read
    syscall, per-byte cipher cost on the simulated CPU, socket copy),
    then tears the session down.  Transfer time combines the CPU time
    actually accumulated on the simulated clock with the 1 Gbps wire
    time; bandwidth is reported relative to native, as in the paper. *)

type point = {
  size_kb : int;
  native_mb_s : float;
  relative : (Config.t * float) list;  (** bandwidth relative to native *)
}

val sizes_kb : int list
(** 1 KB .. 16 MB, the x-axis of Figure 5. *)

val run : ?transfers:int -> unit -> point list
(** [transfers] per size (paper: 20; default 6 — the simulated clock is
    deterministic). *)

val paper_shape : (int * float) list
(** Relative bandwidth read off Figure 5 for base PerspicuOS. *)

val to_table : point list -> Stats.table
