(** Privilege-boundary microbenchmark (paper Table 3).

    Measures the round-trip cost of a null call across each privilege
    boundary: a nested-kernel call (entry gate + empty body + exit
    gate), a system call (SYSCALL/SYSRET into a handler that
    immediately returns), and a hypercall (VMCALL round trip into a
    VMM that immediately resumes the guest). *)

type result = {
  nk_call_us : float;
  syscall_us : float;
  vmcall_us : float;
  iterations : int;
}

val run : ?iterations:int -> unit -> result
(** Default 100_000 iterations per boundary (the paper used 1M; the
    simulated clock is deterministic, so fewer repetitions measure the
    same steady-state cost). *)

val paper : result
(** The values reported in Table 3. *)

val to_table : result -> Stats.table
