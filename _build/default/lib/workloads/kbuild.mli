open Outer_kernel

(** Kernel-compile model (paper Table 4).

    A `make`-style driver fork+execs one compiler process per
    translation unit; each compile opens headers and the source, reads
    them, burns user CPU, writes an object, and exits; a final link
    reads every object.  The nested kernel's cost concentrates in the
    fork/exec/exit storm (address-space construction and teardown) and
    is diluted by user compute — the paper measures 2.6% overall. *)

type result = {
  config : Config.t;
  elapsed_s : float;
  sys_share_pct : float;  (** fraction of time spent in kernel paths *)
  overhead_pct : float;  (** vs native *)
}

val run : ?units:int -> unit -> result list
(** Build with [units] translation units (default 24). *)

val paper : (Config.t * float) list
(** Table 4: overhead percentages over native. *)

val to_table : result list -> Stats.table
