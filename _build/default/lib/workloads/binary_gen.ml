open Nkhw

(* Deterministic linear-congruential generator so binaries are
   reproducible across runs. *)
type rng = { mutable state : int }

let rng seed = { state = (seed * 2654435761) land 0x3FFFFFFF }

let next r bound =
  r.state <- ((r.state * 1103515245) + 12345) land 0x3FFFFFFF;
  r.state mod bound

(* Benign immediates: 16-bit values that cannot contain a protected
   byte pattern (the only 2-byte prefix danger is 0x300F). *)
let benign_imm r =
  let v = next r 0xFFFF in
  if v = 0x300F || v = 0x220F then v + 1 else v

let data_regs = Insn.[ RAX; RBX; RCX; RDX; RSI; RDI ]
let pick_reg r = List.nth data_regs (next r (List.length data_regs))

(* One benign block: a label, some ALU traffic, and a short forward
   branch whose displacement stays below 4096 (so its bytes cannot
   form a pattern). *)
let benign_block r index =
  let l = Printf.sprintf "blk%d" index in
  let reg = pick_reg r in
  let reg2 = pick_reg r in
  Insn.
    [
      Lbl l;
      Ins (Mov_ri (reg, benign_imm r));
      Ins (Add_ri (reg, benign_imm r));
      Ins (Mov_rr (reg2, reg));
      Ins (Xor_rr (reg2, reg));
      Ins (Test_ri (reg, 1));
      Ins (Jz (Label (Printf.sprintf "blk%d" (index + 1))));
      Ins (Add_ri (reg2, benign_imm r));
      Ins Nop;
    ]

(* Plant a protected byte pattern inside a Mov_ri immediate at byte
   position [pos] (0..4 for the 3-byte CR0 pattern, 0..6 for wrmsr). *)
let plant_imm r ~pattern ~pos =
  let bytes = Array.init 8 (fun _ -> 0x11 + next r 0x60) in
  List.iteri (fun i b -> bytes.(pos + i) <- b) pattern;
  (* Keep the sign bit clear so the OCaml int round-trips exactly. *)
  bytes.(7) <- bytes.(7) land 0x7F;
  let imm = ref 0 in
  for i = 7 downto 0 do
    imm := (!imm lsl 8) lor bytes.(i)
  done;
  !imm

let cr0_pattern = [ 0x0F; 0x22; 0xC0 ] (* mov %rax, %cr0 *)
let wrmsr_pattern = [ 0x0F; 0x30 ]

let rec planted_imm r ~pattern ~pos ~want =
  let imm = plant_imm r ~pattern ~pos in
  let probe = Insn.assemble_raw [ Insn.Mov_ri (Insn.RBX, imm) ] in
  (* Exactly the wanted occurrences, no accidental extras. *)
  if List.length (Insn.find_protected_patterns probe) = want then imm
  else planted_imm r ~pattern ~pos ~want

let seeded_mov r ~pattern =
  let pos = next r (7 - List.length pattern) + 1 in
  let imm = planted_imm r ~pattern ~pos ~want:1 in
  Insn.Ins (Insn.Mov_ri (pick_reg r, imm))

(* A Load whose displacement bytes encode the 2-byte wrmsr pattern:
   disp = 0x??300F?? forms (0F, 30) in little-endian order. *)
let seeded_load r =
  let disp = 0x300F lor (next r 0x70 + 0x10) lsl 16 in
  Insn.Ins (Insn.Load (Insn.RSI, Insn.RBP, disp))

let generate ?(seed = 42) ?(benign_blocks = 400) ~implicit_cr0 ~implicit_wrmsr ()
    =
  let r = rng seed in
  let blocks = Array.init benign_blocks (fun i -> benign_block r i) in
  (* Spread the seeded instructions across the blocks. *)
  let seeds =
    List.init implicit_cr0 (fun _ -> seeded_mov r ~pattern:cr0_pattern)
    @ List.init implicit_wrmsr (fun i ->
          if i mod 5 = 4 then seeded_load r
          else seeded_mov r ~pattern:wrmsr_pattern)
  in
  let out = ref [] in
  let n_seeds = List.length seeds in
  List.iteri
    (fun i seed_ins ->
      let at = if n_seeds = 0 then 0 else i * benign_blocks / n_seeds in
      blocks.(min at (benign_blocks - 1)) <-
        blocks.(min at (benign_blocks - 1)) @ [ seed_ins ])
    seeds;
  Array.iter (fun b -> out := b :: !out) blocks;
  let body = List.concat (List.rev !out) in
  body @ Insn.[ Lbl (Printf.sprintf "blk%d" benign_blocks); Ins Ret ]

let paper_kernel () = generate ~implicit_cr0:2 ~implicit_wrmsr:38 ()

let sample_outputs items =
  (* Execute until the first branch on a scratch machine with paging
     off; register state then reflects the constant arithmetic. *)
  let straight =
    let rec take acc = function
      | [] -> List.rev acc
      | Insn.Ins (Insn.Jz _ | Insn.Jnz _ | Insn.Jmp _ | Insn.Call _ | Insn.Ret)
        :: _ ->
          List.rev acc
      | Insn.Ins i :: rest -> take (i :: acc) rest
      | Insn.Lbl _ :: rest -> take acc rest
    in
    take [] items
  in
  let code = Insn.assemble_raw (straight @ [ Insn.Hlt ]) in
  let m = Machine.create ~frames:64 () in
  Phys_mem.write_bytes m.Machine.mem 0x1000 code;
  m.Machine.cpu.Cpu_state.rip <- 0x1000;
  Cpu_state.set m.Machine.cpu Insn.RSP 0x8000;
  Cpu_state.set m.Machine.cpu Insn.RBP 0x4000;
  (match Exec.run ~fuel:10_000 m with
  | Exec.Halted -> ()
  | other ->
      failwith
        (Format.asprintf "Binary_gen.sample_outputs: %a" Exec.pp_stop other));
  List.map (fun reg -> (reg, Cpu_state.get m.Machine.cpu reg)) data_regs
