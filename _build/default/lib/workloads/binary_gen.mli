open Nkhw

(** Synthetic outer-kernel binary generator for the de-privileging
    scanner experiment (paper section 5.2).

    Produces a large, benign instruction stream seeded with a chosen
    number of {e implicit} protected-instruction byte patterns —
    mov-to-CR0 sequences and wrmsr sequences hidden inside 64-bit
    immediates and 32-bit displacements, never as actual instructions.
    The generator is careful that the benign portion is pattern-free,
    so a scan finds exactly the seeded occurrences. *)

val generate :
  ?seed:int ->
  ?benign_blocks:int ->
  implicit_cr0:int ->
  implicit_wrmsr:int ->
  unit ->
  Insn.asm_item list

val paper_kernel : unit -> Insn.asm_item list
(** The configuration the paper reports: 2 implicit CR0 writes and 38
    implicit wrmsr occurrences in the compiled FreeBSD kernel. *)

val sample_outputs : Insn.asm_item list -> (Insn.reg * int) list
(** Architectural effects of the program's constant loads, for
    checking that the de-privileging rewrite preserved semantics: runs
    the straight-line prefix of the program on a scratch machine and
    returns the final register values. *)
