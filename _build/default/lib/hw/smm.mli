(** System Management Mode.

    SMM code runs outside the paging regime: an SMI handler gets raw
    physical-memory access, so whoever controls the handler controls
    the machine (Invariant I10).  On a machine whose SMI handler is
    owned by the nested kernel, attacker payloads are never invoked;
    on an unprotected machine the installed payload runs with full
    physical access. *)

type outcome =
  | Suppressed  (** nested kernel owns SMM; payload not executed *)
  | Executed  (** payload ran with raw physical access *)
  | No_handler

val install_handler :
  Machine.t -> (Machine.t -> unit) -> (unit, string) result
(** Attempt to install an SMI payload.  Rejected when the nested
    kernel owns SMM. *)

val trigger_smi : Machine.t -> outcome
