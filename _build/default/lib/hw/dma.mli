(** DMA engine: device-initiated writes to physical memory.

    DMA bypasses the CPU's MMU entirely; the only thing standing
    between a device and a protected page is the IOMMU.  This is the
    attack surface of paper section 2.5. *)

type error = Blocked_by_iommu of Addr.frame | Out_of_range of Addr.pa

val write :
  Machine.t -> pa:Addr.pa -> bytes -> (unit, error) result
(** Write device data at [pa].  Checked frame-by-frame against the
    IOMMU; a blocked frame aborts the transfer before any byte of that
    frame is written. *)

val read : Machine.t -> pa:Addr.pa -> len:int -> (bytes, error) result

val pp_error : Format.formatter -> error -> unit
