(** SMP-lite: multiple logical CPUs multiplexed over one machine.

    Each CPU has its own architectural state — registers, control
    registers (so CR0.WP is genuinely per-CPU, the fact Invariant I13
    turns on), and TLB.  Exactly one CPU is {e active} at a time; the
    rest are parked with their state saved, and their TLBs stay live as
    shootdown targets.  This models the uniprocessor-with-SMP-hazards
    setting the paper's section 3.6.3 reasons about: while CPU 1 runs
    inside the nested kernel with WP clear, CPU 0 still has WP set and
    its stores to nested-kernel memory fault. *)

type cpu_id = int

type t

val create : Machine.t -> t
(** Wrap the machine's boot CPU as CPU 0 (active). *)

val add_cpu : t -> cpu_id
(** Bring up another CPU: it inherits the current control-register
    values (the nested kernel configured them at boot) but gets fresh
    registers and an empty TLB, which from now on receives
    shootdowns. *)

val cpu_count : t -> int
val active : t -> cpu_id

val activate : t -> cpu_id -> unit
(** Park the active CPU and resume [cpu_id]: swaps register file,
    control registers and TLB on the machine, and fixes up the peer-TLB
    list.  Raises [Invalid_argument] for unknown ids. *)

val with_cpu : t -> cpu_id -> (unit -> 'a) -> 'a
(** Run [f] with [cpu_id] active, then switch back. *)
