lib/hw/smm.mli: Machine
