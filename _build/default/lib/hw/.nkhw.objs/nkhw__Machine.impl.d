lib/hw/machine.ml: Addr Bytes Clock Costs Cpu_state Cr Fault Format Hashtbl Iommu List Mmu Phys_mem Result Tlb
