lib/hw/cr.mli: Addr Format
