lib/hw/cr.ml: Addr Format
