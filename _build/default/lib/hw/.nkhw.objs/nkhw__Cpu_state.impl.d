lib/hw/cpu_state.ml: Addr Array Format Insn List Mmu
