lib/hw/dma.ml: Addr Bytes Format Iommu Machine Phys_mem
