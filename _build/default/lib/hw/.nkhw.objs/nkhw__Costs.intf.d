lib/hw/costs.mli:
