lib/hw/iommu.mli: Addr
