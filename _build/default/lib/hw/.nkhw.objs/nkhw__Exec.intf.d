lib/hw/exec.mli: Fault Format Machine
