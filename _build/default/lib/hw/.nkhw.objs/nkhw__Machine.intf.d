lib/hw/machine.mli: Addr Clock Costs Cpu_state Cr Fault Format Hashtbl Iommu Mmu Phys_mem Tlb
