lib/hw/insn.mli: Buffer Format
