lib/hw/page_table.mli: Addr Phys_mem Pte
