lib/hw/pte.mli: Addr Format
