lib/hw/costs.ml:
