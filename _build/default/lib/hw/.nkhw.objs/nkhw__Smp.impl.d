lib/hw/smp.ml: Cpu_state Cr List Machine Printf Tlb
