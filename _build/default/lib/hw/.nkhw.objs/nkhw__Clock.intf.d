lib/hw/clock.mli:
