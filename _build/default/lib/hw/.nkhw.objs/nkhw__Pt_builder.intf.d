lib/hw/pt_builder.mli: Addr Phys_mem Pte
