lib/hw/dma.mli: Addr Format Machine
