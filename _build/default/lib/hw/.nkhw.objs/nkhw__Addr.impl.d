lib/hw/addr.ml: Format
