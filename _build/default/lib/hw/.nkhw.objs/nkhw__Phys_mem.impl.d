lib/hw/phys_mem.ml: Addr Array Bytes Char Int64 Printf
