lib/hw/cpu_state.mli: Addr Format Insn Mmu
