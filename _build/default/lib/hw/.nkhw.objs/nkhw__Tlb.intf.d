lib/hw/tlb.mli: Addr
