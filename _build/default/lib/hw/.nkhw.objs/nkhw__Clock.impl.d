lib/hw/clock.ml: Hashtbl List Option
