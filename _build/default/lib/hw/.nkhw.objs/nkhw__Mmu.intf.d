lib/hw/mmu.mli: Addr Cr Fault Format Phys_mem Tlb
