lib/hw/pte.ml: Addr Format
