lib/hw/smp.mli: Machine
