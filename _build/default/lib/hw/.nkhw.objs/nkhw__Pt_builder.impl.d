lib/hw/pt_builder.ml: Addr Page_table Phys_mem Printf Pte
