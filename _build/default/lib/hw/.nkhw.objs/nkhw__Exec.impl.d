lib/hw/exec.ml: Addr Buffer Char Costs Cpu_state Cr Fault Format Hashtbl Insn Machine Mmu Option Phys_mem Printf Result Tlb
