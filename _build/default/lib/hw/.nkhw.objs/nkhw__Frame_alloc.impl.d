lib/hw/frame_alloc.ml: Addr Bytes List
