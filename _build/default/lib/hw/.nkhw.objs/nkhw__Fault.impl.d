lib/hw/fault.ml: Addr Format Printexc Printf
