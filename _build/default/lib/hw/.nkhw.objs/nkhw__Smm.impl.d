lib/hw/smm.ml: Machine
