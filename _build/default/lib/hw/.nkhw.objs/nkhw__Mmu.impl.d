lib/hw/mmu.ml: Addr Cr Fault Format Page_table Phys_mem Tlb
