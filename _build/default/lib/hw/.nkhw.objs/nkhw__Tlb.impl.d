lib/hw/tlb.ml: Addr Hashtbl List Option
