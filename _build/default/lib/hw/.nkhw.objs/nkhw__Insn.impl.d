lib/hw/insn.ml: Buffer Bytes Char Format Hashtbl Int32 Int64 List Option
