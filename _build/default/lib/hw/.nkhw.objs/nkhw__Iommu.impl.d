lib/hw/iommu.ml: Addr Hashtbl
