lib/hw/page_table.ml: Addr Hashtbl Phys_mem Pte
