type t = { mutable enabled : bool; protected : (Addr.frame, unit) Hashtbl.t }

let create () = { enabled = false; protected = Hashtbl.create 256 }
let enabled t = t.enabled
let set_enabled t v = t.enabled <- v
let protect_frame t f = Hashtbl.replace t.protected f ()
let unprotect_frame t f = Hashtbl.remove t.protected f
let is_protected t f = Hashtbl.mem t.protected f
let write_allowed t f = not (t.enabled && is_protected t f)
let protected_count t = Hashtbl.length t.protected
