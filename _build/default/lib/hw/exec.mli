(** Instruction interpreter.

    Executes machine code (gates, attack shellcode, scanned binaries)
    on a {!Machine.t}, with faithful fault semantics:

    - every fetch, load and store goes through the MMU with the CPU's
      current ring and the machine's control-register state, so a
      supervisor store to a read-only page faults iff CR0.WP is set;
    - faults and external interrupts are delivered through the IDT:
      RFLAGS and RIP are pushed on the current stack, IF is cleared and
      control transfers to the handler (instruction-restart semantics
      for faults);
    - a fault that cannot be delivered (no IDT, unreadable IDT entry,
      null handler) stops execution with [Stopped_fault] — the moral
      equivalent of a triple fault.

    Higher-level kernel logic is OCaml; machine code hands control back
    to it via the [Callout] instruction. *)

type stop =
  | Halted  (** HLT executed *)
  | Callout of int  (** control handed back to OCaml code *)
  | Stopped_fault of Fault.t  (** undeliverable fault: machine wedged *)
  | Fuel_exhausted

val run : ?fuel:int -> Machine.t -> stop
(** Execute from the CPU's current RIP until a stop condition.  [fuel]
    bounds the instruction count (default 1_000_000). *)

val deliver_trap :
  Machine.t -> vector:int -> fault:Fault.t option -> (unit, Fault.t) result
(** Deliver a trap as the hardware would: look up the handler in the
    IDT, push RFLAGS and the interrupted RIP on the current stack,
    clear IF, and jump.  Records the event in [machine.last_trap]. *)

val pp_stop : Format.formatter -> stop -> unit
