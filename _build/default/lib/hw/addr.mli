(** Virtual and physical addresses for the simulated x86-64-style machine.

    The machine uses 4 KiB pages and a 4-level hierarchical page table
    (PML4 -> PDPT -> PD -> PT), each level indexed by 9 bits of the
    virtual address, exactly as on x86-64.  Addresses are modelled as
    plain OCaml [int]s; the 48-bit virtual address space fits easily in
    OCaml's 63-bit integers. *)

type va = int
(** A virtual address. *)

type pa = int
(** A physical address. *)

type frame = int
(** A physical page-frame number ([pa / page_size]). *)

val page_size : int
(** Bytes per page (4096). *)

val page_shift : int
(** [log2 page_size] = 12. *)

val entries_per_table : int
(** Page-table entries per page-table page (512). *)

val kernbase : va
(** Base virtual address of the kernel direct map: physical frame [f] is
    mapped at [kernbase + f * page_size] for the whole of physical
    memory, mirroring FreeBSD's DMAP region. *)

val frame_of_pa : pa -> frame
val pa_of_frame : frame -> pa
val page_offset : pa -> int

val kva_of_frame : frame -> va
(** Kernel direct-map virtual address of a physical frame. *)

val kva_of_pa : pa -> va
val is_kernel_va : va -> bool

val pml4_index : va -> int
val pdpt_index : va -> int
val pd_index : va -> int
val pt_index : va -> int
(** 9-bit table indices extracted from a virtual address. *)

val index_at_level : level:int -> va -> int
(** [index_at_level ~level va] is the table index used at paging level
    [level], where level 4 is the PML4 and level 1 the PT. *)

val make_va :
  pml4:int -> pdpt:int -> pd:int -> pt:int -> offset:int -> va
(** Reassemble a virtual address from its components.  Inverse of the
    index accessors; indices must be in [0, 511] and offset in
    [0, page_size). *)

val vpage : va -> int
(** Virtual page number ([va / page_size]). *)

val is_page_aligned : va -> bool
val align_down : va -> va
val align_up : va -> va

val pp_va : Format.formatter -> va -> unit
val pp_frame : Format.formatter -> frame -> unit
