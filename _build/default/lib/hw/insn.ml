type reg = RAX | RBX | RCX | RDX | RSI | RDI | RSP | RBP
type cr = CR0 | CR3 | CR4
type target = Rel of int | Label of string

type t =
  | Nop
  | Hlt
  | Pushfq
  | Popfq
  | Cli
  | Sti
  | Push of reg
  | Pop of reg
  | Mov_ri of reg * int
  | Mov_rr of reg * reg
  | Load of reg * reg * int
  | Store of reg * int * reg
  | And_ri of reg * int
  | Or_ri of reg * int
  | Add_ri of reg * int
  | Add_rr of reg * reg
  | Sub_ri of reg * int
  | Xor_rr of reg * reg
  | Test_ri of reg * int
  | Cmp_ri of reg * int
  | Test_rr of reg * reg
  | Cmp_rr of reg * reg
  | Jz of target
  | Jnz of target
  | Jmp of target
  | Call of target
  | Ret
  | Mov_to_cr of cr * reg
  | Mov_from_cr of reg * cr
  | Wrmsr
  | Rdmsr
  | Invlpg of reg
  | Callout of int

let reg_code = function
  | RAX -> 0
  | RCX -> 1
  | RDX -> 2
  | RBX -> 3
  | RSP -> 4
  | RBP -> 5
  | RSI -> 6
  | RDI -> 7

let reg_of_code = function
  | 0 -> Some RAX
  | 1 -> Some RCX
  | 2 -> Some RDX
  | 3 -> Some RBX
  | 4 -> Some RSP
  | 5 -> Some RBP
  | 6 -> Some RSI
  | 7 -> Some RDI
  | _ -> None

let cr_code = function CR0 -> 0 | CR3 -> 3 | CR4 -> 4
let cr_of_code = function 0 -> Some CR0 | 3 -> Some CR3 | 4 -> Some CR4 | _ -> None
let all_regs = [ RAX; RBX; RCX; RDX; RSI; RDI; RSP; RBP ]

(* Opcodes.  The protected instructions use real x86 encodings
   (0F 22 /r, 0F 30) so the scanner hunts genuine byte patterns;
   the rest are a compact custom map. *)
let op_nop = 0x90
let op_hlt = 0xF4
let op_pushfq = 0x9C
let op_popfq = 0x9D
let op_cli = 0xFA
let op_sti = 0xFB
let op_push = 0x50 (* +reg *)
let op_pop = 0x58 (* +reg *)
let op_mov_ri = 0xB8 (* +reg, imm64 *)
let op_mov_rr = 0x89 (* modrm *)
let op_load = 0xA1 (* modrm, disp32 *)
let op_store = 0xA3 (* modrm, disp32 *)
let op_and_ri = 0xE1
let op_or_ri = 0xE2
let op_add_ri = 0xE3
let op_sub_ri = 0xE4
let op_test_ri = 0xE5
let op_cmp_ri = 0xE6
let op_add_rr = 0x01
let op_xor_rr = 0x31
let op_test_rr = 0x85
let op_cmp_rr = 0x39
let op_jz = 0x74
let op_jnz = 0x75
let op_jmp = 0xE9
let op_call = 0xE8
let op_ret = 0xC3
let op_callout = 0xCD
let op_two_byte = 0x0F
let op2_mov_to_cr = 0x22
let op2_mov_from_cr = 0x20
let op2_wrmsr = 0x30
let op2_rdmsr = 0x32
let op2_invlpg = 0x01

let encoded_length = function
  | Nop | Hlt | Pushfq | Popfq | Cli | Sti | Ret | Push _ | Pop _ -> 1
  | Wrmsr | Rdmsr -> 2
  | Mov_rr _ | Add_rr _ | Xor_rr _ | Test_rr _ | Cmp_rr _ -> 2
  | Mov_to_cr _ | Mov_from_cr _ | Invlpg _ -> 3
  | Jz _ | Jnz _ | Jmp _ | Call _ | Callout _ -> 5
  | Load _ | Store _ -> 6
  | Mov_ri _ -> 9
  | And_ri _ | Or_ri _ | Add_ri _ | Sub_ri _ | Test_ri _ | Cmp_ri _ -> 10

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let add_i32 b v =
  add_u8 b v;
  add_u8 b (v asr 8);
  add_u8 b (v asr 16);
  add_u8 b (v asr 24)

let add_i64 b v =
  add_i32 b v;
  add_i32 b (v asr 32)

let modrm r1 r2 = 0xC0 lor (reg_code r1 lsl 3) lor reg_code r2

let rel_of = function
  | Rel r -> r
  | Label l -> failwith ("Insn.encode: unresolved label " ^ l)

let encode b = function
  | Nop -> add_u8 b op_nop
  | Hlt -> add_u8 b op_hlt
  | Pushfq -> add_u8 b op_pushfq
  | Popfq -> add_u8 b op_popfq
  | Cli -> add_u8 b op_cli
  | Sti -> add_u8 b op_sti
  | Ret -> add_u8 b op_ret
  | Push r -> add_u8 b (op_push + reg_code r)
  | Pop r -> add_u8 b (op_pop + reg_code r)
  | Mov_ri (r, imm) ->
      add_u8 b (op_mov_ri + reg_code r);
      add_i64 b imm
  | Mov_rr (dst, src) ->
      add_u8 b op_mov_rr;
      add_u8 b (modrm src dst)
  | Load (dst, base, disp) ->
      add_u8 b op_load;
      add_u8 b (modrm dst base);
      add_i32 b disp
  | Store (base, disp, src) ->
      add_u8 b op_store;
      add_u8 b (modrm src base);
      add_i32 b disp
  | And_ri (r, imm) ->
      add_u8 b op_and_ri;
      add_u8 b (reg_code r);
      add_i64 b imm
  | Or_ri (r, imm) ->
      add_u8 b op_or_ri;
      add_u8 b (reg_code r);
      add_i64 b imm
  | Add_ri (r, imm) ->
      add_u8 b op_add_ri;
      add_u8 b (reg_code r);
      add_i64 b imm
  | Sub_ri (r, imm) ->
      add_u8 b op_sub_ri;
      add_u8 b (reg_code r);
      add_i64 b imm
  | Test_ri (r, imm) ->
      add_u8 b op_test_ri;
      add_u8 b (reg_code r);
      add_i64 b imm
  | Cmp_ri (r, imm) ->
      add_u8 b op_cmp_ri;
      add_u8 b (reg_code r);
      add_i64 b imm
  | Add_rr (dst, src) ->
      add_u8 b op_add_rr;
      add_u8 b (modrm src dst)
  | Xor_rr (dst, src) ->
      add_u8 b op_xor_rr;
      add_u8 b (modrm src dst)
  | Test_rr (a, b') ->
      add_u8 b op_test_rr;
      add_u8 b (modrm b' a)
  | Cmp_rr (a, b') ->
      add_u8 b op_cmp_rr;
      add_u8 b (modrm b' a)
  | Jz tgt ->
      add_u8 b op_jz;
      add_i32 b (rel_of tgt)
  | Jnz tgt ->
      add_u8 b op_jnz;
      add_i32 b (rel_of tgt)
  | Jmp tgt ->
      add_u8 b op_jmp;
      add_i32 b (rel_of tgt)
  | Call tgt ->
      add_u8 b op_call;
      add_i32 b (rel_of tgt)
  | Callout code ->
      add_u8 b op_callout;
      add_i32 b code
  | Mov_to_cr (c, r) ->
      add_u8 b op_two_byte;
      add_u8 b op2_mov_to_cr;
      add_u8 b (0xC0 lor (cr_code c lsl 3) lor reg_code r)
  | Mov_from_cr (r, c) ->
      add_u8 b op_two_byte;
      add_u8 b op2_mov_from_cr;
      add_u8 b (0xC0 lor (cr_code c lsl 3) lor reg_code r)
  | Wrmsr ->
      add_u8 b op_two_byte;
      add_u8 b op2_wrmsr
  | Rdmsr ->
      add_u8 b op_two_byte;
      add_u8 b op2_rdmsr
  | Invlpg r ->
      add_u8 b op_two_byte;
      add_u8 b op2_invlpg;
      add_u8 b (0x38 lor reg_code r)

let get_u8 code off =
  if off < Bytes.length code then Some (Char.code (Bytes.get code off))
  else None

let get_i32 code off =
  if off + 4 <= Bytes.length code then
    Some (Int32.to_int (Bytes.get_int32_le code off))
  else None

let get_i64 code off =
  if off + 8 <= Bytes.length code then
    (* Keep the value in OCaml int range; the machine word is 63-bit. *)
    Some (Int64.to_int (Bytes.get_int64_le code off))
  else None

let decode code off =
  let ( let* ) = Option.bind in
  let* op = get_u8 code off in
  let rr k =
    let* m = get_u8 code (off + 1) in
    if m land 0xC0 <> 0xC0 then None
    else
      let* r1 = reg_of_code ((m lsr 3) land 7) in
      let* r2 = reg_of_code (m land 7) in
      Some (k r1 r2, 2)
  in
  let reg_imm64 k =
    let* rc = get_u8 code (off + 1) in
    let* r = reg_of_code rc in
    let* imm = get_i64 code (off + 2) in
    Some (k r imm, 10)
  in
  let rel32 k =
    let* d = get_i32 code (off + 1) in
    Some (k (Rel d), 5)
  in
  if op >= op_push && op < op_push + 8 then
    let* r = reg_of_code (op - op_push) in
    Some (Push r, 1)
  else if op >= op_pop && op < op_pop + 8 then
    let* r = reg_of_code (op - op_pop) in
    Some (Pop r, 1)
  else if op >= op_mov_ri && op < op_mov_ri + 8 then
    let* r = reg_of_code (op - op_mov_ri) in
    let* imm = get_i64 code (off + 1) in
    Some (Mov_ri (r, imm), 9)
  else if op = op_nop then Some (Nop, 1)
  else if op = op_hlt then Some (Hlt, 1)
  else if op = op_pushfq then Some (Pushfq, 1)
  else if op = op_popfq then Some (Popfq, 1)
  else if op = op_cli then Some (Cli, 1)
  else if op = op_sti then Some (Sti, 1)
  else if op = op_ret then Some (Ret, 1)
  else if op = op_mov_rr then rr (fun src dst -> Mov_rr (dst, src))
  else if op = op_add_rr then rr (fun src dst -> Add_rr (dst, src))
  else if op = op_xor_rr then rr (fun src dst -> Xor_rr (dst, src))
  else if op = op_test_rr then rr (fun src dst -> Test_rr (dst, src))
  else if op = op_cmp_rr then rr (fun src dst -> Cmp_rr (dst, src))
  else if op = op_load then
    let* m = get_u8 code (off + 1) in
    if m land 0xC0 <> 0xC0 then None
    else
      let* dst = reg_of_code ((m lsr 3) land 7) in
      let* base = reg_of_code (m land 7) in
      let* disp = get_i32 code (off + 2) in
      Some (Load (dst, base, disp), 6)
  else if op = op_store then
    let* m = get_u8 code (off + 1) in
    if m land 0xC0 <> 0xC0 then None
    else
      let* src = reg_of_code ((m lsr 3) land 7) in
      let* base = reg_of_code (m land 7) in
      let* disp = get_i32 code (off + 2) in
      Some (Store (base, disp, src), 6)
  else if op = op_and_ri then reg_imm64 (fun r i -> And_ri (r, i))
  else if op = op_or_ri then reg_imm64 (fun r i -> Or_ri (r, i))
  else if op = op_add_ri then reg_imm64 (fun r i -> Add_ri (r, i))
  else if op = op_sub_ri then reg_imm64 (fun r i -> Sub_ri (r, i))
  else if op = op_test_ri then reg_imm64 (fun r i -> Test_ri (r, i))
  else if op = op_cmp_ri then reg_imm64 (fun r i -> Cmp_ri (r, i))
  else if op = op_jz then rel32 (fun t -> Jz t)
  else if op = op_jnz then rel32 (fun t -> Jnz t)
  else if op = op_jmp then rel32 (fun t -> Jmp t)
  else if op = op_call then rel32 (fun t -> Call t)
  else if op = op_callout then
    let* c = get_i32 code (off + 1) in
    Some (Callout c, 5)
  else if op = op_two_byte then
    let* op2 = get_u8 code (off + 1) in
    if op2 = op2_wrmsr then Some (Wrmsr, 2)
    else if op2 = op2_rdmsr then Some (Rdmsr, 2)
    else if op2 = op2_mov_to_cr then
      let* m = get_u8 code (off + 2) in
      if m land 0xC0 <> 0xC0 then None
      else
        let* c = cr_of_code ((m lsr 3) land 7) in
        let* r = reg_of_code (m land 7) in
        Some (Mov_to_cr (c, r), 3)
    else if op2 = op2_mov_from_cr then
      let* m = get_u8 code (off + 2) in
      if m land 0xC0 <> 0xC0 then None
      else
        let* c = cr_of_code ((m lsr 3) land 7) in
        let* r = reg_of_code (m land 7) in
        Some (Mov_from_cr (r, c), 3)
    else if op2 = op2_invlpg then
      let* m = get_u8 code (off + 2) in
      if m land 0xF8 <> 0x38 then None
      else
        let* r = reg_of_code (m land 7) in
        Some (Invlpg r, 3)
    else None
  else None

type asm_item = Ins of t | Lbl of string

let assemble items =
  (* Two passes: compute label offsets, then encode with resolved
     displacements relative to the end of each branch instruction. *)
  let labels = Hashtbl.create 16 in
  let off = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Lbl l ->
          if Hashtbl.mem labels l then failwith ("Insn.assemble: duplicate label " ^ l);
          Hashtbl.replace labels l !off
      | Ins i -> off := !off + encoded_length i)
    items;
  let resolve here len = function
    | Rel _ -> failwith "Insn.assemble: use labels for branch targets"
    | Label l -> (
        match Hashtbl.find_opt labels l with
        | None -> failwith ("Insn.assemble: undefined label " ^ l)
        | Some tgt -> Rel (tgt - (here + len)))
  in
  let b = Buffer.create 256 in
  let off = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Lbl _ -> ()
      | Ins i ->
          let len = encoded_length i in
          let i' =
            match i with
            | Jz t -> Jz (resolve !off len t)
            | Jnz t -> Jnz (resolve !off len t)
            | Jmp t -> Jmp (resolve !off len t)
            | Call t -> Call (resolve !off len t)
            | other -> other
          in
          encode b i';
          off := !off + len)
    items;
  Buffer.to_bytes b

let assemble_raw insns =
  let b = Buffer.create 256 in
  List.iter (encode b) insns;
  Buffer.to_bytes b

let disassemble code =
  let rec go off acc =
    if off >= Bytes.length code then List.rev acc
    else
      match decode code off with
      | None -> List.rev acc
      | Some (i, len) -> go (off + len) ((off, i) :: acc)
  in
  go 0 []

let is_protected = function Mov_to_cr _ | Wrmsr -> true | _ -> false

type protected_kind = P_mov_cr of cr | P_wrmsr

let equal_protected_kind a b = a = b

let pp_reg ppf r =
  Format.pp_print_string ppf
    (match r with
    | RAX -> "rax"
    | RBX -> "rbx"
    | RCX -> "rcx"
    | RDX -> "rdx"
    | RSI -> "rsi"
    | RDI -> "rdi"
    | RSP -> "rsp"
    | RBP -> "rbp")

let pp_cr ppf c =
  Format.pp_print_string ppf
    (match c with CR0 -> "cr0" | CR3 -> "cr3" | CR4 -> "cr4")

let pp_target ppf = function
  | Rel r -> Format.fprintf ppf "%+d" r
  | Label l -> Format.pp_print_string ppf l

let pp ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Hlt -> Format.pp_print_string ppf "hlt"
  | Pushfq -> Format.pp_print_string ppf "pushfq"
  | Popfq -> Format.pp_print_string ppf "popfq"
  | Cli -> Format.pp_print_string ppf "cli"
  | Sti -> Format.pp_print_string ppf "sti"
  | Push r -> Format.fprintf ppf "push %a" pp_reg r
  | Pop r -> Format.fprintf ppf "pop %a" pp_reg r
  | Mov_ri (r, i) -> Format.fprintf ppf "mov %a, %#x" pp_reg r i
  | Mov_rr (d, s) -> Format.fprintf ppf "mov %a, %a" pp_reg d pp_reg s
  | Load (d, b, disp) -> Format.fprintf ppf "mov %a, [%a%+d]" pp_reg d pp_reg b disp
  | Store (b, disp, s) -> Format.fprintf ppf "mov [%a%+d], %a" pp_reg b disp pp_reg s
  | And_ri (r, i) -> Format.fprintf ppf "and %a, %#x" pp_reg r i
  | Or_ri (r, i) -> Format.fprintf ppf "or %a, %#x" pp_reg r i
  | Add_ri (r, i) -> Format.fprintf ppf "add %a, %#x" pp_reg r i
  | Add_rr (d, s) -> Format.fprintf ppf "add %a, %a" pp_reg d pp_reg s
  | Sub_ri (r, i) -> Format.fprintf ppf "sub %a, %#x" pp_reg r i
  | Xor_rr (d, s) -> Format.fprintf ppf "xor %a, %a" pp_reg d pp_reg s
  | Test_ri (r, i) -> Format.fprintf ppf "test %a, %#x" pp_reg r i
  | Cmp_ri (r, i) -> Format.fprintf ppf "cmp %a, %#x" pp_reg r i
  | Test_rr (a, b) -> Format.fprintf ppf "test %a, %a" pp_reg a pp_reg b
  | Cmp_rr (a, b) -> Format.fprintf ppf "cmp %a, %a" pp_reg a pp_reg b
  | Jz t -> Format.fprintf ppf "jz %a" pp_target t
  | Jnz t -> Format.fprintf ppf "jnz %a" pp_target t
  | Jmp t -> Format.fprintf ppf "jmp %a" pp_target t
  | Call t -> Format.fprintf ppf "call %a" pp_target t
  | Ret -> Format.pp_print_string ppf "ret"
  | Mov_to_cr (c, r) -> Format.fprintf ppf "mov %a, %a" pp_cr c pp_reg r
  | Mov_from_cr (r, c) -> Format.fprintf ppf "mov %a, %a" pp_reg r pp_cr c
  | Wrmsr -> Format.pp_print_string ppf "wrmsr"
  | Rdmsr -> Format.pp_print_string ppf "rdmsr"
  | Invlpg r -> Format.fprintf ppf "invlpg [%a]" pp_reg r
  | Callout c -> Format.fprintf ppf "callout %d" c

let pp_protected_kind ppf = function
  | P_mov_cr c -> Format.fprintf ppf "mov-to-%a" pp_cr c
  | P_wrmsr -> Format.pp_print_string ppf "wrmsr"

let find_protected_patterns code =
  let n = Bytes.length code in
  let get i = Char.code (Bytes.get code i) in
  let acc = ref [] in
  for off = n - 2 downto 0 do
    if get off = op_two_byte then
      let op2 = get (off + 1) in
      if op2 = op2_wrmsr then acc := (off, P_wrmsr) :: !acc
      else if op2 = op2_mov_to_cr && off + 2 < n then
        let m = get (off + 2) in
        if m land 0xC0 = 0xC0 then
          match cr_of_code ((m lsr 3) land 7) with
          | Some c when reg_of_code (m land 7) <> None ->
              acc := (off, P_mov_cr c) :: !acc
          | Some _ | None -> ()
  done;
  !acc
