(** Hardware faults raised by the simulated machine. *)

type access_kind = Read | Write | Exec

type page_fault_code = {
  present : bool;  (** fault on a present page (protection violation) *)
  write : bool;  (** faulting access was a write *)
  user : bool;  (** faulting access came from user mode *)
  instruction_fetch : bool;
}
(** Mirrors the x86-64 page-fault error code. *)

type t =
  | Page_fault of { va : Addr.va; code : page_fault_code }
  | General_protection of string
      (** Invalid control-register manipulation, bad IDT entry, ... *)
  | Invalid_opcode of { va : Addr.va }

val page_fault :
  ?user:bool -> ?present:bool -> Addr.va -> access_kind -> t

val vector : t -> int
(** Interrupt vector a fault is delivered through (14 for page faults,
    13 for general protection, 6 for invalid opcode). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_access_kind : Format.formatter -> access_kind -> unit

exception Hardware of t
(** Raised by machine memory accessors on faulting accesses when the
    caller did not ask for a [result]. *)
