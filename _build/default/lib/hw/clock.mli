(** Cycle accumulator and event counters for one machine.

    Besides total cycles, the clock keeps named event counters so that
    tests and benchmarks can assert {e how many} mediated operations a
    given kernel path performed (e.g. PTE writes during a fork). *)

type t

val create : unit -> t
val charge : t -> int -> unit
val cycles : t -> int
val reset : t -> unit

val count : t -> string -> unit
(** Increment the named event counter. *)

val count_n : t -> string -> int -> unit
val counter : t -> string -> int
val counters : t -> (string * int) list
(** All counters, sorted by name. *)

type snapshot

val snapshot : t -> snapshot
val cycles_since : t -> snapshot -> int
val counter_since : t -> snapshot -> string -> int
