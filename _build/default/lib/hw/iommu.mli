(** IOMMU: blocks DMA writes to protected physical frames.

    The nested kernel registers every protected frame (page-table
    pages, its own code and data, write-protected client data) so that
    devices cannot bypass the MMU-based write mediation (paper
    section 2.5). *)

type t

val create : unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val protect_frame : t -> Addr.frame -> unit
val unprotect_frame : t -> Addr.frame -> unit
val is_protected : t -> Addr.frame -> bool

val write_allowed : t -> Addr.frame -> bool
(** False iff the IOMMU is enabled and the frame is protected. *)

val protected_count : t -> int
