type va = int
type pa = int
type frame = int

let page_shift = 12
let page_size = 1 lsl page_shift
let entries_per_table = 512

(* Bit 47 set: PML4 slot 256 — the canonical upper half, as on x86-64;
   user space occupies slots 0-255. *)
let kernbase = 0x8000_0000_0000

let frame_of_pa pa = pa lsr page_shift
let pa_of_frame f = f lsl page_shift
let page_offset pa = pa land (page_size - 1)
let kva_of_frame f = kernbase + pa_of_frame f
let kva_of_pa pa = kernbase + pa
let is_kernel_va va = va >= kernbase

let pml4_index va = (va lsr 39) land 0x1ff
let pdpt_index va = (va lsr 30) land 0x1ff
let pd_index va = (va lsr 21) land 0x1ff
let pt_index va = (va lsr 12) land 0x1ff

let index_at_level ~level va =
  match level with
  | 4 -> pml4_index va
  | 3 -> pdpt_index va
  | 2 -> pd_index va
  | 1 -> pt_index va
  | _ -> invalid_arg "Addr.index_at_level: level must be in 1..4"

let make_va ~pml4 ~pdpt ~pd ~pt ~offset =
  if
    pml4 < 0 || pml4 > 511 || pdpt < 0 || pdpt > 511 || pd < 0 || pd > 511
    || pt < 0 || pt > 511
    || offset < 0
    || offset >= page_size
  then invalid_arg "Addr.make_va: component out of range";
  (pml4 lsl 39) lor (pdpt lsl 30) lor (pd lsl 21) lor (pt lsl 12) lor offset

let vpage va = va lsr page_shift
let is_page_aligned va = va land (page_size - 1) = 0
let align_down va = va land lnot (page_size - 1)
let align_up va = align_down (va + page_size - 1)
let pp_va ppf va = Format.fprintf ppf "0x%012x" va
let pp_frame ppf f = Format.fprintf ppf "#%d" f
