(** Architectural CPU state: general-purpose registers, RIP, the two
    flags the gate code depends on (ZF and IF), and the privilege
    ring. *)

type t = {
  regs : int array;
  mutable rip : Addr.va;
  mutable zf : bool;
  mutable intf : bool;  (** RFLAGS.IF — interrupts enabled *)
  mutable ring : Mmu.ring;
  mutable halted : bool;
}

val create : unit -> t
(** Supervisor ring, interrupts enabled, all registers zero. *)

val get : t -> Insn.reg -> int
val set : t -> Insn.reg -> int -> unit

val flags_word : t -> int
(** Pack ZF and IF into the word pushed by [pushfq]. *)

val set_flags_word : t -> int -> unit

val copy : t -> t
val pp : Format.formatter -> t -> unit
