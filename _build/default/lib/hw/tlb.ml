type entry = {
  frame : Addr.frame;
  writable : bool;
  user : bool;
  nx : bool;
  global : bool;
}

type t = {
  table : (int, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { table = Hashtbl.create 1024; hits = 0; misses = 0 }

let lookup t ~vpage =
  match Hashtbl.find_opt t.table vpage with
  | Some e ->
      t.hits <- t.hits + 1;
      Some e
  | None -> None

let insert t ~vpage e = Hashtbl.replace t.table vpage e

let flush_all t =
  let keep = Hashtbl.fold (fun k e acc -> if e.global then (k, e) :: acc else acc) t.table [] in
  Hashtbl.reset t.table;
  List.iter (fun (k, e) -> Hashtbl.replace t.table k e) keep

let flush_page t ~vpage = Hashtbl.remove t.table vpage
let hits t = t.hits
let misses t = t.misses
let record_miss t = t.misses <- t.misses + 1
let size t = Hashtbl.length t.table
