(** Translation lookaside buffer.

    Caches (virtual page -> translation) with the permissions that were
    in force when the walk was performed.  This matters for security
    fidelity: a mapping change without a TLB shootdown leaves a stale
    entry that the MMU will happily keep using — exactly the hazard the
    nested kernel must handle by flushing after protection downgrades. *)

type entry = {
  frame : Addr.frame;
  writable : bool;
  user : bool;
  nx : bool;
  global : bool;
}

type t

val create : unit -> t
val lookup : t -> vpage:int -> entry option
val insert : t -> vpage:int -> entry -> unit

val flush_all : t -> unit
(** Full flush, as a CR3 reload performs (non-global entries). *)

val flush_page : t -> vpage:int -> unit
(** INVLPG. *)

val hits : t -> int
val misses : t -> int
val record_miss : t -> unit
val size : t -> int
