type t = { pages : Bytes.t array }

let create ~frames =
  if frames <= 0 then invalid_arg "Phys_mem.create: frames must be positive";
  { pages = Array.init frames (fun _ -> Bytes.make Addr.page_size '\000') }

let num_frames t = Array.length t.pages
let size_bytes t = num_frames t * Addr.page_size
let valid_pa t pa = pa >= 0 && pa < size_bytes t
let valid_frame t f = f >= 0 && f < num_frames t

let check t pa len =
  if pa < 0 || pa + len > size_bytes t then
    invalid_arg
      (Printf.sprintf "Phys_mem: access [0x%x, +%d) out of range" pa len)

let read_u8 t pa =
  check t pa 1;
  Char.code (Bytes.get t.pages.(Addr.frame_of_pa pa) (Addr.page_offset pa))

let write_u8 t pa v =
  check t pa 1;
  Bytes.set t.pages.(Addr.frame_of_pa pa) (Addr.page_offset pa)
    (Char.chr (v land 0xff))

let read_u64 t pa =
  check t pa 8;
  let off = Addr.page_offset pa in
  if off <= Addr.page_size - 8 then
    let v =
      Bytes.get_int64_le t.pages.(Addr.frame_of_pa pa) off
    in
    Int64.to_int (Int64.logand v 0x7FFF_FFFF_FFFF_FFFFL)
  else
    (* Straddles a page boundary: assemble byte by byte. *)
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor read_u8 t (pa + i)
    done;
    !v land max_int

let write_u64 t pa v =
  check t pa 8;
  let off = Addr.page_offset pa in
  if off <= Addr.page_size - 8 then
    Bytes.set_int64_le t.pages.(Addr.frame_of_pa pa) off (Int64.of_int v)
  else
    for i = 0 to 7 do
      write_u8 t (pa + i) ((v lsr (8 * i)) land 0xff)
    done

let blit_to_bytes t pa dst dst_off len =
  check t pa len;
  let remaining = ref len and src = ref pa and doff = ref dst_off in
  while !remaining > 0 do
    let off = Addr.page_offset !src in
    let chunk = min !remaining (Addr.page_size - off) in
    Bytes.blit t.pages.(Addr.frame_of_pa !src) off dst !doff chunk;
    src := !src + chunk;
    doff := !doff + chunk;
    remaining := !remaining - chunk
  done

let blit_from_bytes src src_off t pa len =
  check t pa len;
  let remaining = ref len and dst = ref pa and soff = ref src_off in
  while !remaining > 0 do
    let off = Addr.page_offset !dst in
    let chunk = min !remaining (Addr.page_size - off) in
    Bytes.blit src !soff t.pages.(Addr.frame_of_pa !dst) off chunk;
    dst := !dst + chunk;
    soff := !soff + chunk;
    remaining := !remaining - chunk
  done

let read_bytes t pa len =
  let b = Bytes.create len in
  blit_to_bytes t pa b 0 len;
  b

let write_bytes t pa b = blit_from_bytes b 0 t pa (Bytes.length b)
let zero_frame t f = Bytes.fill t.pages.(f) 0 Addr.page_size '\000'

let frame_copy t ~src ~dst =
  Bytes.blit t.pages.(src) 0 t.pages.(dst) 0 Addr.page_size
