type access_kind = Read | Write | Exec

type page_fault_code = {
  present : bool;
  write : bool;
  user : bool;
  instruction_fetch : bool;
}

type t =
  | Page_fault of { va : Addr.va; code : page_fault_code }
  | General_protection of string
  | Invalid_opcode of { va : Addr.va }

let page_fault ?(user = false) ?(present = false) va kind =
  Page_fault
    {
      va;
      code =
        {
          present;
          write = (kind = Write);
          user;
          instruction_fetch = (kind = Exec);
        };
    }

let vector = function
  | Page_fault _ -> 14
  | General_protection _ -> 13
  | Invalid_opcode _ -> 6

let pp_access_kind ppf k =
  Format.pp_print_string ppf
    (match k with Read -> "read" | Write -> "write" | Exec -> "exec")

let pp ppf = function
  | Page_fault { va; code } ->
      Format.fprintf ppf "#PF at %a (%s%s%s%s)" Addr.pp_va va
        (if code.present then "prot" else "not-present")
        (if code.write then ",write" else ",read")
        (if code.user then ",user" else ",supervisor")
        (if code.instruction_fetch then ",ifetch" else "")
  | General_protection msg -> Format.fprintf ppf "#GP(%s)" msg
  | Invalid_opcode { va } -> Format.fprintf ppf "#UD at %a" Addr.pp_va va

let to_string t = Format.asprintf "%a" pp t

exception Hardware of t

let () =
  Printexc.register_printer (function
    | Hardware f -> Some (Printf.sprintf "Fault.Hardware(%s)" (to_string f))
    | _ -> None)
