type walk = {
  frame : Addr.frame;
  writable : bool;
  user : bool;
  nx : bool;
  global : bool;
  level : int;
  leaf_ptp : Addr.frame;
  leaf_index : int;
}

type result = Mapped of walk | Not_mapped of { level : int }

let entry_pa ~ptp ~index =
  if index < 0 || index >= Addr.entries_per_table then
    invalid_arg "Page_table.entry_pa: index out of range";
  Addr.pa_of_frame ptp + (index * 8)

let get_entry mem ~ptp ~index = Phys_mem.read_u64 mem (entry_pa ~ptp ~index)

let set_entry mem ~ptp ~index pte =
  Phys_mem.write_u64 mem (entry_pa ~ptp ~index) pte

let walk mem ~root va =
  let rec go ptp level ~writable ~user ~nx =
    let index = Addr.index_at_level ~level va in
    let pte = get_entry mem ~ptp ~index in
    if not (Pte.is_present pte) then Not_mapped { level }
    else
      let writable = writable && Pte.is_writable pte in
      let user = user && Pte.is_user pte in
      let nx = nx || Pte.is_nx pte in
      let leaf () =
        Mapped
          {
            frame = Pte.frame pte;
            writable;
            user;
            nx;
            global = Pte.is_global pte;
            level;
            leaf_ptp = ptp;
            leaf_index = index;
          }
      in
      if level = 1 then leaf ()
      else if Pte.is_large pte && level = 2 then leaf ()
      else go (Pte.frame pte) (level - 1) ~writable ~user ~nx
  in
  go root 4 ~writable:true ~user:true ~nx:false

let translate mem ~root va =
  match walk mem ~root va with
  | Not_mapped _ -> None
  | Mapped w ->
      let page_bits =
        match w.level with
        | 1 -> Addr.page_shift
        | 2 -> Addr.page_shift + 9
        | _ -> Addr.page_shift
      in
      Some (Addr.pa_of_frame w.frame lor (va land ((1 lsl page_bits) - 1)))

let iter_tree mem ~root f =
  let visited = Hashtbl.create 64 in
  let rec table ptp level =
    if not (Hashtbl.mem visited ptp) then begin
      Hashtbl.replace visited ptp ();
      for index = 0 to Addr.entries_per_table - 1 do
        let pte = get_entry mem ~ptp ~index in
        if Pte.is_present pte then begin
          f ~ptp ~index ~level pte;
          let leaf = level = 1 || (level = 2 && Pte.is_large pte) in
          if not leaf then table (Pte.frame pte) (level - 1)
        end
      done
    end
  in
  table root 4

let iter_user_leaves mem ~root f =
  for i4 = 0 to 255 do
    let e4 = get_entry mem ~ptp:root ~index:i4 in
    if Pte.is_present e4 then
      let pdpt = Pte.frame e4 in
      for i3 = 0 to Addr.entries_per_table - 1 do
        let e3 = get_entry mem ~ptp:pdpt ~index:i3 in
        if Pte.is_present e3 then
          let pd = Pte.frame e3 in
          for i2 = 0 to Addr.entries_per_table - 1 do
            let e2 = get_entry mem ~ptp:pd ~index:i2 in
            if Pte.is_present e2 then
              if Pte.is_large e2 then
                let va =
                  Addr.make_va ~pml4:i4 ~pdpt:i3 ~pd:i2 ~pt:0 ~offset:0
                in
                f ~va ~ptp:pd ~index:i2 e2
              else
                let pt = Pte.frame e2 in
                for i1 = 0 to Addr.entries_per_table - 1 do
                  let e1 = get_entry mem ~ptp:pt ~index:i1 in
                  if Pte.is_present e1 then
                    let va =
                      Addr.make_va ~pml4:i4 ~pdpt:i3 ~pd:i2 ~pt:i1 ~offset:0
                    in
                    f ~va ~ptp:pt ~index:i1 e1
                done
          done
      done
  done
