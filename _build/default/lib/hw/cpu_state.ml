type t = {
  regs : int array;
  mutable rip : Addr.va;
  mutable zf : bool;
  mutable intf : bool;
  mutable ring : Mmu.ring;
  mutable halted : bool;
}

let create () =
  {
    regs = Array.make 8 0;
    rip = 0;
    zf = false;
    intf = true;
    ring = Mmu.Supervisor;
    halted = false;
  }

let get t r = t.regs.(Insn.reg_code r)
let set t r v = t.regs.(Insn.reg_code r) <- v

let flags_word t = (if t.zf then 1 else 0) lor if t.intf then 2 else 0

let set_flags_word t w =
  t.zf <- w land 1 <> 0;
  t.intf <- w land 2 <> 0

let copy t =
  {
    regs = Array.copy t.regs;
    rip = t.rip;
    zf = t.zf;
    intf = t.intf;
    ring = t.ring;
    halted = t.halted;
  }

let pp ppf t =
  Format.fprintf ppf "rip=%a ring=%a zf=%b if=%b" Addr.pp_va t.rip Mmu.pp_ring
    t.ring t.zf t.intf;
  List.iter
    (fun r ->
      Format.fprintf ppf " %a=%#x" Insn.pp_reg r (get t r))
    Insn.all_regs
