type ring = Supervisor | User

type ok = { pa : Addr.pa; tlb_hit : bool }

let pp_ring ppf r =
  Format.pp_print_string ppf
    (match r with Supervisor -> "supervisor" | User -> "user")

let check_perms ~(cr : Cr.t) ~ring ~kind ~va ~(e : Tlb.entry) =
  let user_mode = ring = User in
  let fail () =
    Error (Fault.page_fault ~user:user_mode ~present:true va kind)
  in
  match (kind : Fault.access_kind) with
  | Read -> if user_mode && not e.user then fail () else Ok ()
  | Write ->
      if user_mode then if e.user && e.writable then Ok () else fail ()
      else if (not e.writable) && Cr.wp_enabled cr then fail ()
      else Ok ()
  | Exec ->
      if e.nx && Cr.nx_enabled cr then fail ()
      else if user_mode && not e.user then fail ()
      else if (not user_mode) && e.user && Cr.smep_enabled cr then fail ()
      else Ok ()

let access mem cr tlb ~ring ~kind va =
  if not (Cr.paging_enabled cr) then
    (* Real-address-style access: va is pa, no protection whatsoever. *)
    if Phys_mem.valid_pa mem va then Ok { pa = va; tlb_hit = false }
    else Error (Fault.General_protection "physical access out of range")
  else
    let vpage = Addr.vpage va in
    let asid = Cr.asid cr in
    let entry, tlb_hit =
      match Tlb.lookup tlb ~asid ~vpage with
      | Some e -> (Some e, true)
      | None -> (
          Tlb.record_miss tlb;
          match Page_table.walk mem ~root:(Cr.root_frame cr) va with
          | Page_table.Not_mapped _ -> (None, false)
          | Page_table.Mapped w ->
              (* A 2 MiB leaf covers 512 consecutive virtual pages; cache
                 the one page we touched. *)
              let frame =
                if w.level = 2 then w.frame + (vpage land 0x1ff) else w.frame
              in
              let e =
                Tlb.
                  {
                    frame;
                    writable = w.writable;
                    user = w.user;
                    nx = w.nx;
                    global = w.global;
                  }
              in
              Tlb.insert tlb ~asid ~vpage e;
              (Some e, false))
    in
    match entry with
    | None ->
        Error (Fault.page_fault ~user:(ring = User) ~present:false va kind)
    | Some e -> (
        match check_perms ~cr ~ring ~kind ~va ~e with
        | Error f -> Error f
        | Ok () ->
            let pa = Addr.pa_of_frame e.frame lor (va land (Addr.page_size - 1)) in
            if Phys_mem.valid_pa mem pa then Ok { pa; tlb_hit }
            else Error (Fault.General_protection "translated pa out of range"))
