let intermediate_flags ~user =
  { Pte.kernel_rw with user }

let map_page mem ~root ~alloc_ptp ?(on_new_ptp = fun ~level:_ _ -> ()) va leaf =
  let user = not (Addr.is_kernel_va va) in
  let rec descend ptp level =
    let index = Addr.index_at_level ~level va in
    if level = 1 then Page_table.set_entry mem ~ptp ~index leaf
    else
      let entry = Page_table.get_entry mem ~ptp ~index in
      let next =
        if Pte.is_present entry then Pte.frame entry
        else begin
          let f = alloc_ptp () in
          Phys_mem.zero_frame mem f;
          on_new_ptp ~level:(level - 1) f;
          Page_table.set_entry mem ~ptp ~index
            (Pte.make ~frame:f (intermediate_flags ~user));
          f
        end
      in
      descend next (level - 1)
  in
  descend root 4

let map_range mem ~root ~alloc_ptp ?on_new_ptp ~va ~first_frame ~count flags =
  for i = 0 to count - 1 do
    map_page mem ~root ~alloc_ptp ?on_new_ptp
      (va + (i * Addr.page_size))
      (Pte.make ~frame:(first_frame + i) flags)
  done

let build_direct_map mem ~root ~alloc_ptp ?on_new_ptp ~frames flags =
  map_range mem ~root ~alloc_ptp ?on_new_ptp ~va:Addr.kernbase ~first_frame:0
    ~count:frames flags

let set_leaf_flags mem ~root va flags =
  match Page_table.walk mem ~root va with
  | Page_table.Not_mapped { level } ->
      Error (Printf.sprintf "set_leaf_flags: not mapped (level %d)" level)
  | Page_table.Mapped w ->
      let old = Page_table.get_entry mem ~ptp:w.leaf_ptp ~index:w.leaf_index in
      Page_table.set_entry mem ~ptp:w.leaf_ptp ~index:w.leaf_index
        (Pte.with_flags old flags);
      Ok ()
