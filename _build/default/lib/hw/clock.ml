type t = { mutable cycles : int; counters : (string, int) Hashtbl.t }

let create () = { cycles = 0; counters = Hashtbl.create 32 }
let charge t c = t.cycles <- t.cycles + c
let cycles t = t.cycles

let reset t =
  t.cycles <- 0;
  Hashtbl.reset t.counters

let count_n t name n =
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.counters name) in
  Hashtbl.replace t.counters name (cur + n)

let count t name = count_n t name 1
let counter t name = Option.value ~default:0 (Hashtbl.find_opt t.counters name)

let counters t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters []
  |> List.sort compare

type snapshot = { at_cycles : int; at_counters : (string * int) list }

let snapshot t = { at_cycles = t.cycles; at_counters = counters t }
let cycles_since t s = t.cycles - s.at_cycles

let counter_since t s name =
  let before =
    Option.value ~default:0 (List.assoc_opt name s.at_counters)
  in
  counter t name - before
