(** Control registers of the simulated machine.

    These carry exactly the bits the nested kernel's security argument
    depends on (paper section 3.2): CR0.{PE,PG,WP}, CR4.{PAE,SMEP},
    EFER.{LME,NX}.  CR3 holds the physical address of the active
    top-level page-table page (PML4). *)

val cr0_pe : int
val cr0_wp : int
val cr0_pg : int
val cr4_pae : int
val cr4_smep : int
val efer_lme : int
val efer_nx : int
(** Bit masks, at their x86-64 positions. *)

type t = {
  mutable cr0 : int;
  mutable cr3 : int;  (** physical address of the root PTP *)
  mutable cr4 : int;
  mutable efer : int;
}

val create : unit -> t
(** All registers zero: real-mode-like reset state, paging off. *)

val copy : t -> t

val long_mode_paging : t -> bool
(** True when translation is active: PE, PG, PAE and LME all set. *)

val wp_enabled : t -> bool
val smep_enabled : t -> bool
val nx_enabled : t -> bool
val paging_enabled : t -> bool
val root_frame : t -> Addr.frame

val pp : Format.formatter -> t -> unit
