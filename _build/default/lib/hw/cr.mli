(** Control registers of the simulated machine.

    These carry exactly the bits the nested kernel's security argument
    depends on (paper section 3.2): CR0.{PE,PG,WP}, CR4.{PAE,SMEP},
    EFER.{LME,NX}.  CR3 holds the physical address of the active
    top-level page-table page (PML4). *)

val cr0_pe : int
val cr0_wp : int
val cr0_pg : int
val cr4_pae : int
val cr4_pcide : int
val cr4_smep : int
val efer_lme : int
val efer_nx : int
(** Bit masks, at their x86-64 positions. *)

val pcid_bits : int
(** Width of a process-context identifier (12). *)

val max_pcid : int
(** Largest valid PCID (4095). *)

type t = {
  mutable cr0 : int;
  mutable cr3 : int;  (** physical address of the root PTP *)
  mutable cr4 : int;
  mutable efer : int;
}

val create : unit -> t
(** All registers zero: real-mode-like reset state, paging off. *)

val copy : t -> t

val long_mode_paging : t -> bool
(** True when translation is active: PE, PG, PAE and LME all set. *)

val wp_enabled : t -> bool
val smep_enabled : t -> bool
val nx_enabled : t -> bool
val paging_enabled : t -> bool
val pcid_enabled : t -> bool

val root_frame : t -> Addr.frame
(** Frame of the active root PTP.  With CR4.PCIDE set the low 12 bits
    of CR3 hold the PCID instead of address bits; they are masked off
    either way. *)

val pcid : t -> int
(** Low 12 bits of CR3 — meaningful only when [pcid_enabled]. *)

val asid : t -> int
(** The address-space tag translations are cached under: the PCID when
    CR4.PCIDE is set, 0 otherwise (pre-PCID behaviour). *)

val cr3_value : frame:Addr.frame -> pcid:int -> int
(** CR3 image selecting [frame] as root with the given PCID tag. *)

val pp : Format.formatter -> t -> unit
