(** The machine's instruction set and its byte-level encoding.

    Only the code the nested-kernel design reasons about at the
    instruction level is modelled as machine code: the entry/exit/trap
    gates, attack shellcode, and the binaries fed to the de-privileging
    scanner.  The bulk of kernel logic runs as OCaml, charging costs.

    The encoding is deliberately x86-64-flavoured and variable-length:
    {e protected instructions} (paper Table 2) use the real x86 opcode
    prefixes ([0F 22 /r] for mov-to-CR, [0F 30] for WRMSR), and 64-bit
    immediates are emitted verbatim — so protected-instruction byte
    patterns can occur {e implicitly} inside immediates or displacements
    at unaligned offsets, which is exactly what the paper's binary
    scanner must find and eliminate (sections 3.5 and 5.2). *)

type reg = RAX | RBX | RCX | RDX | RSI | RDI | RSP | RBP

type cr = CR0 | CR3 | CR4

type target = Rel of int | Label of string
(** Branch target: resolved relative displacement (from the end of the
    instruction, as on x86) or a symbolic label resolved at assembly. *)

type t =
  | Nop
  | Hlt
  | Pushfq  (** push RFLAGS (IF and ZF) *)
  | Popfq
  | Cli
  | Sti
  | Push of reg
  | Pop of reg
  | Mov_ri of reg * int  (** 64-bit immediate load *)
  | Mov_rr of reg * reg  (** dst, src *)
  | Load of reg * reg * int  (** dst <- [base + disp] *)
  | Store of reg * int * reg  (** [base + disp] <- src *)
  | And_ri of reg * int
  | Or_ri of reg * int
  | Add_ri of reg * int
  | Add_rr of reg * reg
  | Sub_ri of reg * int
  | Xor_rr of reg * reg
  | Test_ri of reg * int  (** sets ZF from [reg land imm] *)
  | Cmp_ri of reg * int  (** sets ZF from [reg = imm] *)
  | Test_rr of reg * reg
  | Cmp_rr of reg * reg
  | Jz of target
  | Jnz of target
  | Jmp of target
  | Call of target
  | Ret
  | Mov_to_cr of cr * reg  (** protected instruction *)
  | Mov_from_cr of reg * cr
  | Wrmsr  (** protected: MSR number in RCX, value in RAX *)
  | Rdmsr  (** RAX <- MSR[RCX] *)
  | Invlpg of reg  (** flush TLB entry for the page of [reg] *)
  | Callout of int
      (** Leave the interpreter and return control to OCaml with a
          code; used where gate code hands off to nested-kernel or
          outer-kernel logic implemented in OCaml. *)

val reg_code : reg -> int
val cr_code : cr -> int
val all_regs : reg list

val encoded_length : t -> int
val encode : Buffer.t -> t -> unit

val decode : bytes -> int -> (t * int) option
(** [decode code off] decodes the instruction at byte offset [off],
    returning it with its encoded length, or [None] for an invalid or
    truncated encoding.  Branch targets decode as [Rel _]. *)

type asm_item = Ins of t | Lbl of string

val assemble : asm_item list -> bytes
(** Resolve labels and encode.  Raises [Failure] on undefined or
    duplicate labels, or on a [Rel]-form branch (use labels). *)

val assemble_raw : t list -> bytes
(** Encode a label-free program ([Rel] branches allowed). *)

val disassemble : bytes -> (int * t) list
(** Linear-sweep disassembly from offset 0; stops at the first invalid
    byte. *)

val is_protected : t -> bool
(** True for the instructions the outer kernel must not contain:
    mov-to-CR and WRMSR (paper Table 2). *)

type protected_kind = P_mov_cr of cr | P_wrmsr

val pp : Format.formatter -> t -> unit
val pp_reg : Format.formatter -> reg -> unit
val pp_protected_kind : Format.formatter -> protected_kind -> unit
val equal_protected_kind : protected_kind -> protected_kind -> bool

val find_protected_patterns : bytes -> (int * protected_kind) list
(** All byte offsets (aligned or not) where a protected-instruction
    encoding occurs.  This is the raw pattern scan the de-privileging
    scanner builds on. *)
