(** Raw page-table construction.

    Builds translations by writing entries directly with
    {!Page_table.set_entry} — no mediation, no permission checks.  Used
    in exactly two places: the trusted boot path (which runs before the
    outer kernel exists) and the native baseline kernel (which is the
    unprotected configuration the paper compares against). *)

val map_page :
  Phys_mem.t ->
  root:Addr.frame ->
  alloc_ptp:(unit -> Addr.frame) ->
  ?on_new_ptp:(level:int -> Addr.frame -> unit) ->
  Addr.va ->
  Pte.t ->
  unit
(** Install a 4 KiB leaf mapping for [va], creating intermediate
    page-table pages with [alloc_ptp] as needed (zeroing them and
    reporting each through [on_new_ptp] with its paging level).
    Intermediate entries are created maximally permissive (present,
    writable, and user-accessible for user-half addresses); effective
    permissions come from the leaf. *)

val map_range :
  Phys_mem.t ->
  root:Addr.frame ->
  alloc_ptp:(unit -> Addr.frame) ->
  ?on_new_ptp:(level:int -> Addr.frame -> unit) ->
  va:Addr.va ->
  first_frame:Addr.frame ->
  count:int ->
  Pte.flags ->
  unit
(** Map [count] consecutive frames starting at [first_frame] to
    consecutive pages starting at [va]. *)

val build_direct_map :
  Phys_mem.t ->
  root:Addr.frame ->
  alloc_ptp:(unit -> Addr.frame) ->
  ?on_new_ptp:(level:int -> Addr.frame -> unit) ->
  frames:int ->
  Pte.flags ->
  unit
(** Map physical frames [0, frames) at [Addr.kernbase] (the kernel
    direct map) with uniform flags. *)

val set_leaf_flags :
  Phys_mem.t -> root:Addr.frame -> Addr.va -> Pte.flags -> (unit, string) result
(** Rewrite the flags of an existing leaf mapping (protection pass at
    boot). *)
