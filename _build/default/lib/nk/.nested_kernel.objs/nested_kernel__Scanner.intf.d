lib/nk/scanner.mli: Format Insn Nkhw
