lib/nk/invariants.ml: Addr Cr Format Gate Iommu List Machine Nkhw Page_table Pgdesc Pte State
