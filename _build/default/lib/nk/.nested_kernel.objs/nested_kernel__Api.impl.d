lib/nk/api.ml: Code_integrity Gate Init Invariants State Vmmu Wp_service
