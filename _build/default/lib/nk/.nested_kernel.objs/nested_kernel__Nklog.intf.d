lib/nk/nklog.mli: Format
