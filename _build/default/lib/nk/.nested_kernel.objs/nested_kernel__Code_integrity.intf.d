lib/nk/code_integrity.mli: Addr Nk_error Nkhw State
