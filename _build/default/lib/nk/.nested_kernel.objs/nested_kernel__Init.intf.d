lib/nk/init.mli: Addr Machine Nkhw State
