lib/nk/state.ml: Addr Format Gate Hashtbl Machine Nk_error Nkhw Page_table Pgdesc Pheap Policy
