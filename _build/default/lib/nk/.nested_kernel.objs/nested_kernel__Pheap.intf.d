lib/nk/pheap.mli: Addr Nkhw
