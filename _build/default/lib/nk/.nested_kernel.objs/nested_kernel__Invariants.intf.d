lib/nk/invariants.mli: Format State
