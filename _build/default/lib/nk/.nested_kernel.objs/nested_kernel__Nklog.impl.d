lib/nk/nklog.ml: Bytes Format List String
