lib/nk/vmmu.ml: Addr Costs Cr Hashtbl Iommu List Machine Nk_error Nkhw Page_table Pgdesc Phys_mem Pte Result State Tlb
