lib/nk/vmmu.mli: Addr Nk_error Nkhw Pte State
