lib/nk/gate.mli: Addr Exec Format Insn Machine Nkhw Phys_mem
