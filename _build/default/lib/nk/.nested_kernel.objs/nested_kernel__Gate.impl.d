lib/nk/gate.ml: Addr Array Bytes Clock Costs Cpu_state Cr Exec Format Insn Machine Nkhw Option Phys_mem Tlb
