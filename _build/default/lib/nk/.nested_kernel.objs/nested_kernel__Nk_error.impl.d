lib/nk/nk_error.ml: Addr Fault Format Nkhw
