lib/nk/pheap.ml: Addr Hashtbl Nkhw
