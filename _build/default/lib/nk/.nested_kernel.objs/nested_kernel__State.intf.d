lib/nk/state.mli: Addr Gate Hashtbl Machine Nk_error Nkhw Pgdesc Pheap Policy
