lib/nk/code_integrity.ml: Addr Bytes Costs Insn Iommu List Machine Nk_error Nkhw Page_table Pgdesc Phys_mem Pte State
