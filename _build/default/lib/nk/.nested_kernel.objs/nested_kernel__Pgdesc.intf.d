lib/nk/pgdesc.mli: Addr Format Nkhw
