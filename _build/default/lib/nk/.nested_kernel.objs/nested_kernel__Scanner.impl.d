lib/nk/scanner.ml: Format Fun Hashtbl Insn List Nkhw Option Printf
