lib/nk/api.mli: Addr Init Invariants Machine Nk_error Nkhw Policy Pte State
