lib/nk/wp_service.mli: Addr Nk_error Nkhw Policy State
