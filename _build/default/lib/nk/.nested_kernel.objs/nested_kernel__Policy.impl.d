lib/nk/policy.ml: Bytes Nklog Printf
