lib/nk/init.ml: Addr Cpu_state Cr Frame_alloc Gate Hashtbl Insn Iommu List Machine Nkhw Page_table Pgdesc Pheap Phys_mem Pt_builder Pte State Tlb
