lib/nk/policy.mli: Nklog
