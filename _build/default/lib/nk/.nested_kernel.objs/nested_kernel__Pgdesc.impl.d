lib/nk/pgdesc.ml: Addr Array Format List Nkhw Printf
