lib/nk/wp_service.ml: Addr Bytes Costs Hashtbl Iommu List Machine Nk_error Nkhw Page_table Pgdesc Pheap Policy Pte Result State
