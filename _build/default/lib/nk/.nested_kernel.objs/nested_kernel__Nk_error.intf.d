lib/nk/nk_error.mli: Addr Fault Format Nkhw
