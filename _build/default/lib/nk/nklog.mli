(** Nested-kernel-internal write log.

    Storage for the write-logging mediation policy (paper section
    4.1.3): every mediated write to a logged region is recorded with
    its offset, the bytes it replaced, and the bytes written.  The log
    lives in nested-kernel state, unreachable from the outer kernel;
    forensic tools replay it to reconstruct the history of a protected
    object. *)

type record = {
  seq : int;
  offset : int;  (** byte offset within the logged region *)
  old : string;  (** bytes replaced *)
  data : string;  (** bytes written *)
}

type t

val create : unit -> t
val append : t -> offset:int -> old:bytes -> data:bytes -> unit
val length : t -> int
val records : t -> record list
(** In write order. *)

val replay : t -> initial:bytes -> upto:int -> bytes
(** State of the region after the first [upto] records, starting from
    [initial].  [replay t ~initial ~upto:(length t)] is the current
    contents. *)

val writes_touching : t -> offset:int -> len:int -> record list
(** Records overlapping the byte range [offset, offset+len). *)

val pp_record : Format.formatter -> record -> unit
