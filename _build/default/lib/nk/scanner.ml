open Nkhw

type finding = { offset : int; kind : Insn.protected_kind; explicit : bool }

let scan code =
  let patterns = Insn.find_protected_patterns code in
  let boundaries = Hashtbl.create 256 in
  List.iter
    (fun (off, insn) -> Hashtbl.replace boundaries off insn)
    (Insn.disassemble code);
  List.map
    (fun (offset, kind) ->
      let explicit =
        match Hashtbl.find_opt boundaries offset with
        | Some insn -> Insn.is_protected insn
        | None -> false
      in
      { offset; kind; explicit })
    patterns

let is_clean code = Insn.find_protected_patterns code = []

type summary = {
  total : int;
  explicit_count : int;
  implicit_cr0 : int;
  implicit_cr_other : int;
  implicit_wrmsr : int;
}

let summarize findings =
  List.fold_left
    (fun s f ->
      if f.explicit then { s with explicit_count = s.explicit_count + 1 }
      else
        match f.kind with
        | Insn.P_mov_cr Insn.CR0 -> { s with implicit_cr0 = s.implicit_cr0 + 1 }
        | Insn.P_mov_cr _ ->
            { s with implicit_cr_other = s.implicit_cr_other + 1 }
        | Insn.P_wrmsr -> { s with implicit_wrmsr = s.implicit_wrmsr + 1 })
    {
      total = List.length findings;
      explicit_count = 0;
      implicit_cr0 = 0;
      implicit_cr_other = 0;
      implicit_wrmsr = 0;
    }
    findings

type rewrite_stats = {
  iterations : int;
  constants_split : int;
  nops_inserted : int;
  exprs_rewritten : int;
}

let no_stats =
  { iterations = 0; constants_split = 0; nops_inserted = 0; exprs_rewritten = 0 }

(* Offsets of each Ins item in the assembled program (labels are
   zero-width), mirroring Insn.assemble's layout pass. *)
let item_offsets items =
  let _, rev =
    List.fold_left
      (fun (off, acc) (i, item) ->
        match item with
        | Insn.Lbl _ -> (off, acc)
        | Insn.Ins insn ->
            (off + Insn.encoded_length insn, (off, i, insn) :: acc))
      (0, [])
      (List.mapi (fun i item -> (i, item)) items)
  in
  List.rev rev

let locate items off =
  List.find_opt
    (fun (start, _, insn) -> off >= start && off < start + Insn.encoded_length insn)
    (item_offsets items)

(* Candidate split constants.  A protected pattern can hide at any
   byte position of an 8-byte immediate, and subtracting k only
   disturbs bytes up to k's magnitude — so the candidates sweep a
   perturbation across every byte position, plus a few small values
   for low-byte patterns. *)
let split_candidates =
  List.concat_map
    (fun j -> [ 0x11 lsl (8 * j); 0x2B lsl (8 * j) ])
    [ 0; 1; 2; 3; 4; 5; 6 ]
  @ [ 1; 0x1003; 0x10101; 13 ]

let clean_replacement insns =
  Insn.find_protected_patterns (Insn.assemble_raw insns) = []

let try_candidates f =
  List.find_map
    (fun k ->
      match f k with
      | Some insns when clean_replacement insns -> Some insns
      | Some _ | None -> None)
    split_candidates

let scratch_for r = if r = Insn.RAX then Insn.RCX else Insn.RAX

type action =
  | Replace of Insn.t list * [ `Split | `Expr ]
  | Insert_nop_between of string  (** label name of the branch target *)

let plan_rewrite insn =
  match insn with
  | Insn.Mov_ri (r, imm) ->
      Option.map
        (fun insns -> Replace (insns, `Split))
        (try_candidates (fun k ->
             Some [ Insn.Mov_ri (r, imm - k); Insn.Add_ri (r, k) ]))
  | Insn.Add_ri (r, imm) ->
      Option.map
        (fun insns -> Replace (insns, `Expr))
        (try_candidates (fun k ->
             Some [ Insn.Add_ri (r, imm - k); Insn.Add_ri (r, k) ]))
  | Insn.Sub_ri (r, imm) ->
      Option.map
        (fun insns -> Replace (insns, `Expr))
        (try_candidates (fun k ->
             Some [ Insn.Sub_ri (r, imm - k); Insn.Sub_ri (r, k) ]))
  | Insn.Or_ri (r, imm) ->
      (* Split the mask into two halves whose union is the original. *)
      let masks =
        [
          (0xFFFFFFFF, -1 lxor 0xFFFFFFFF);
          (0xFFFF, -1 lxor 0xFFFF);
          (0xFF00FF00FF00FF, -1 lxor 0xFF00FF00FF00FF);
        ]
      in
      List.find_map
        (fun (m1, m2) ->
          let a = imm land m1 and b = imm land m2 in
          let insns = [ Insn.Or_ri (r, a); Insn.Or_ri (r, b) ] in
          if a lor b = imm && clean_replacement insns then
            Some (Replace (insns, `Expr))
          else None)
        masks
  | Insn.And_ri (r, imm) ->
      (* (imm|b1) & (imm|b2) = imm when b1 and b2 are disjoint single
         bits outside imm. *)
      let free_bits =
        List.filter (fun b -> imm land (1 lsl b) = 0) (List.init 61 Fun.id)
      in
      let rec pairs = function
        | b1 :: (b2 :: _ as rest) ->
            let insns =
              [
                Insn.And_ri (r, imm lor (1 lsl b1));
                Insn.And_ri (r, imm lor (1 lsl b2));
              ]
            in
            if clean_replacement insns then Some (Replace (insns, `Expr))
            else pairs rest
        | _ -> None
      in
      pairs free_bits
  | Insn.Test_ri (r, imm) ->
      let s = scratch_for r in
      Option.map
        (fun insns -> Replace (insns, `Split))
        (try_candidates (fun k ->
             Some
               [
                 Insn.Push s;
                 Insn.Mov_ri (s, imm - k);
                 Insn.Add_ri (s, k);
                 Insn.Test_rr (r, s);
                 Insn.Pop s;
               ]))
  | Insn.Cmp_ri (r, imm) ->
      let s = scratch_for r in
      Option.map
        (fun insns -> Replace (insns, `Split))
        (try_candidates (fun k ->
             Some
               [
                 Insn.Push s;
                 Insn.Mov_ri (s, imm - k);
                 Insn.Add_ri (s, k);
                 Insn.Cmp_rr (r, s);
                 Insn.Pop s;
               ]))
  | Insn.Load (dst, base, disp) ->
      Option.map
        (fun insns -> Replace (insns, `Expr))
        (try_candidates (fun k ->
             if dst = base then
               Some [ Insn.Add_ri (base, k); Insn.Load (dst, base, disp - k) ]
             else
               Some
                 [
                   Insn.Add_ri (base, k);
                   Insn.Load (dst, base, disp - k);
                   Insn.Sub_ri (base, k);
                 ]))
  | Insn.Store (base, disp, src) ->
      if src = base then None
      else
        Option.map
          (fun insns -> Replace (insns, `Expr))
          (try_candidates (fun k ->
               Some
                 [
                   Insn.Add_ri (base, k);
                   Insn.Store (base, disp - k, src);
                   Insn.Sub_ri (base, k);
                 ]))
  | Insn.Jz (Insn.Label l)
  | Insn.Jnz (Insn.Label l)
  | Insn.Jmp (Insn.Label l)
  | Insn.Call (Insn.Label l) ->
      Some (Insert_nop_between l)
  | _ -> None

let splice items idx replacement =
  List.concat
    (List.mapi
       (fun i item -> if i = idx then replacement else [ item ])
       items)

let insert_at items pos extra =
  let rec go i = function
    | [] -> [ extra ]
    | x :: rest -> if i = pos then extra :: x :: rest else x :: go (i + 1) rest
  in
  go 0 items

let label_index items l =
  let rec go i = function
    | [] -> None
    | Insn.Lbl l' :: _ when l' = l -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 items

let max_iterations = 400

let deprivilege items =
  let rec loop items stats iter =
    if iter > max_iterations then
      Error "deprivilege: did not converge (too many rewrite iterations)"
    else
      let code = Insn.assemble items in
      match Insn.find_protected_patterns code with
      | [] -> Ok (items, { stats with iterations = iter })
      | (off, kind) :: _ -> (
          match locate items off with
          | None ->
              Error
                (Printf.sprintf "deprivilege: pattern at %#x outside any instruction" off)
          | Some (start, idx, insn) ->
              if off = start && Insn.is_protected insn then
                Error
                  (Format.asprintf
                     "deprivilege: explicit protected instruction (%a) at %#x"
                     Insn.pp insn off)
              else (
                match plan_rewrite insn with
                | None ->
                    Error
                      (Format.asprintf
                         "deprivilege: cannot rewrite %a (implicit %a at %#x)"
                         Insn.pp insn Insn.pp_protected_kind kind off)
                | Some (Replace (replacement, how)) ->
                    let items =
                      splice items idx (List.map (fun i -> Insn.Ins i) replacement)
                    in
                    let stats =
                      match how with
                      | `Split ->
                          { stats with constants_split = stats.constants_split + 1 }
                      | `Expr ->
                          { stats with exprs_rewritten = stats.exprs_rewritten + 1 }
                    in
                    loop items stats (iter + 1)
                | Some (Insert_nop_between l) -> (
                    match label_index items l with
                    | None ->
                        Error ("deprivilege: branch to unknown label " ^ l)
                    | Some lidx ->
                        let pos = min idx lidx + 1 in
                        let items = insert_at items pos (Insn.Ins Insn.Nop) in
                        loop items
                          { stats with nops_inserted = stats.nops_inserted + 1 }
                          (iter + 1))))
  in
  loop items no_stats 0

let pp_finding ppf f =
  Format.fprintf ppf "%s %a at %#x"
    (if f.explicit then "explicit" else "implicit")
    Insn.pp_protected_kind f.kind f.offset

let pp_summary ppf s =
  Format.fprintf ppf
    "total=%d explicit=%d implicit(cr0=%d, other-cr=%d, wrmsr=%d)" s.total
    s.explicit_count s.implicit_cr0 s.implicit_cr_other s.implicit_wrmsr
