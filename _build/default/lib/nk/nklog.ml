type record = { seq : int; offset : int; old : string; data : string }

type t = { mutable rev_records : record list; mutable next_seq : int }

let create () = { rev_records = []; next_seq = 0 }

let append t ~offset ~old ~data =
  let r =
    {
      seq = t.next_seq;
      offset;
      old = Bytes.to_string old;
      data = Bytes.to_string data;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.rev_records <- r :: t.rev_records

let length t = t.next_seq
let records t = List.rev t.rev_records

let replay t ~initial ~upto =
  let buf = Bytes.copy initial in
  List.iter
    (fun r ->
      if r.seq < upto then
        Bytes.blit_string r.data 0 buf r.offset (String.length r.data))
    (records t);
  buf

let writes_touching t ~offset ~len =
  List.filter
    (fun r ->
      let rlen = String.length r.data in
      r.offset < offset + len && offset < r.offset + rlen)
    (records t)

let pp_record ppf r =
  Format.fprintf ppf "#%d @%d: %d bytes" r.seq r.offset (String.length r.data)
