open Nkhw

(** The intra-kernel write-protection service (paper Table 1,
    sections 2.4 and 3.8).

    Clients obtain a {e write descriptor} for a region of protected
    memory — either by declaring existing kernel memory
    ([nk_declare]) or by allocating from the nested kernel's protected
    heap ([nk_alloc]) — and thereafter modify the region exclusively
    through [nk_write], which bounds-checks the write and consults the
    descriptor's mediation policy before copying a byte.  All mappings
    to the region's pages are read-only, so any store that bypasses
    [nk_write] takes a protection fault. *)

val declare :
  State.t ->
  base:Addr.va ->
  size:int ->
  Policy.t ->
  (State.wd, Nk_error.t) result
(** [nk_declare]: protect [size] bytes of existing kernel memory at
    [base].  Every page overlapping the region is retyped
    [Protected_data], all its mappings are downgraded to read-only,
    and its frame is shielded from DMA.  The paper's separate
    protected ELF section corresponds to calling this on
    dedicated pages (section 3.8); byte-granularity policies make
    co-located unprotected data workable but trap-prone. *)

val alloc :
  State.t -> size:int -> Policy.t -> (State.wd * Addr.va, Nk_error.t) result
(** [nk_alloc]: allocate [size] bytes from the protected heap and
    return the descriptor and region address. *)

val free : State.t -> State.wd -> (unit, Nk_error.t) result
(** [nk_free]: deactivate the descriptor.  Heap blocks are retained in
    protected memory for reuse by future [alloc]s only; a freed region
    never becomes writable to the outer kernel (defeats
    free-then-overwrite exploits, section 2.4). *)

val write :
  State.t -> State.wd -> dest:Addr.va -> bytes -> (unit, Nk_error.t) result
(** [nk_write]: mediated write of [bytes] at [dest].  Verifies
    [dest, dest+len) lies within the descriptor's region, invokes the
    mediation policy, and performs the copy inside the gates. *)

val read : State.t -> State.wd -> src:Addr.va -> len:int -> (bytes, Nk_error.t) result
(** Convenience read of protected data (reads never require
    mediation: the region is readable through its normal mapping). *)

val emulate_colocated_write :
  State.t -> dest:Addr.va -> bytes -> (unit, Nk_error.t) result
(** The protection-granularity-gap path (paper section 3.8): a store
    to {e unprotected} data that happens to share a page with protected
    data takes a protection fault; the fault handler forwards it here
    and the nested kernel emulates it — after verifying the bytes do
    not overlap any active write descriptor (those must go through
    [nk_write]).  Charges the trap cost plus a gate crossing, which is
    exactly why the paper moves protected statics to dedicated pages
    instead. *)
