open Nkhw

(** Lifetime kernel code integrity (paper section 3.5).

    Outer-kernel code becomes executable in supervisor mode only after
    the de-privileging scanner has verified it contains no protected
    instruction at any byte offset; validated pages are write-protected
    for life.  Everything else is non-executable by default (NX), and
    SMEP keeps the supervisor out of user pages — so no unvalidated
    byte can ever execute at ring 0. *)

val validate : bytes -> (unit, Nk_error.t) result
(** Scan a code image; [Unvalidated_code] points at the first
    protected-instruction occurrence (aligned or not). *)

val install_code :
  State.t -> frames:Addr.frame list -> bytes -> (unit, Nk_error.t) result
(** Validate [code] and copy it into [frames] (page-sized chunks),
    retyping them [Outer_code], marking them validated, write-protecting
    their direct-map mappings and shielding them from DMA.  The outer
    kernel may then map them executable via {!Vmmu.write_pte}. *)

val retire_code :
  State.t -> frames:Addr.frame list -> (unit, Nk_error.t) result
(** Module unload: retype the frames back to ordinary outer-kernel
    data (writable, NX).  Fails if any frame is still mapped outside
    the direct map. *)
