open Nkhw

(** De-privileging scanner (paper sections 3.5 and 5.2).

    Lifetime kernel code integrity requires that {e no} protected
    instruction — mov-to-CR or WRMSR — exist anywhere in outer-kernel
    code, {e including at unaligned instruction boundaries}: an
    attacker with control of RIP can jump into the middle of an
    instruction and execute bytes that happen to encode one.

    [scan] finds every occurrence; [deprivilege] rewrites a program
    until none remain, using the paper's three elimination techniques:
    adjusting alignment with nops (for branch displacements),
    rewriting arithmetic expressions, and splitting constants into
    pairs combined at run time. *)

type finding = {
  offset : int;  (** byte offset of the protected-instruction pattern *)
  kind : Insn.protected_kind;
  explicit : bool;
      (** the pattern sits at an instruction boundary and {e is} the
          instruction there — genuine use of a protected instruction *)
}

val scan : bytes -> finding list
val is_clean : bytes -> bool

type summary = {
  total : int;
  explicit_count : int;
  implicit_cr0 : int;
  implicit_cr_other : int;
  implicit_wrmsr : int;
}

val summarize : finding list -> summary
(** The classification reported in the paper's section 5.2 (they found
    2 implicit CR0 writes and 38 implicit wrmsr occurrences). *)

type rewrite_stats = {
  iterations : int;
  constants_split : int;
  nops_inserted : int;
  exprs_rewritten : int;
}

val deprivilege :
  Insn.asm_item list ->
  (Insn.asm_item list * rewrite_stats, string) result
(** Rewrite the program until its assembly contains no protected
    patterns.  Fails if the program contains an {e explicit} protected
    instruction (those may only live in the nested kernel) or an
    implicit occurrence in an instruction the rewriter cannot
    transform. *)

val pp_finding : Format.formatter -> finding -> unit
val pp_summary : Format.formatter -> summary -> unit
