type decision = Allow | Deny of string

type t = {
  name : string;
  mediate : offset:int -> old:bytes -> data:bytes -> decision;
  commit : offset:int -> old:bytes -> data:bytes -> unit;
}

let allow_all ~offset:_ ~old:_ ~data:_ = Allow
let no_commit ~offset:_ ~old:_ ~data:_ = ()

let unrestricted = { name = "unrestricted"; mediate = allow_all; commit = no_commit }

let no_write =
  {
    name = "no-write";
    mediate = (fun ~offset:_ ~old:_ ~data:_ -> Deny "region is constant");
    commit = no_commit;
  }

type write_once_state = { bitmap : Bytes.t; mutable written : int }

let write_once_state ~size =
  if size < 0 then invalid_arg "Policy.write_once_state";
  { bitmap = Bytes.make size '\000'; written = 0 }

let written_bytes s = s.written

let write_once s =
  let mediate ~offset ~old:_ ~data =
    let len = Bytes.length data in
    if offset < 0 || offset + len > Bytes.length s.bitmap then
      Deny "write outside write-once bitmap"
    else
      let rec check i =
        if i = len then Allow
        else if Bytes.get s.bitmap (offset + i) <> '\000' then
          Deny (Printf.sprintf "byte %d already written" (offset + i))
        else check (i + 1)
      in
      check 0
  in
  let commit ~offset ~old:_ ~data =
    let len = Bytes.length data in
    Bytes.fill s.bitmap offset len '\001';
    s.written <- s.written + len
  in
  { name = "write-once"; mediate; commit }

type append_state = { size : int; allow_gaps : bool; mutable tail : int }

let append_state ?(allow_gaps = false) ~size () =
  if size < 0 then invalid_arg "Policy.append_state";
  { size; allow_gaps; tail = 0 }

let tail s = s.tail
let remaining s = s.size - s.tail
let reset_append s = s.tail <- 0

let append_only s =
  let mediate ~offset ~old:_ ~data =
    let len = Bytes.length data in
    if offset < s.tail then
      Deny
        (Printf.sprintf "write at %d would overwrite log tail %d" offset
           s.tail)
    else if (not s.allow_gaps) && offset > s.tail then
      Deny (Printf.sprintf "gap: write at %d, tail at %d" offset s.tail)
    else if offset + len > s.size then Deny "append-only buffer full"
    else Allow
  in
  let commit ~offset ~old:_ ~data =
    s.tail <- offset + Bytes.length data
  in
  { name = "append-only"; mediate; commit }

let write_log log =
  {
    name = "write-log";
    mediate = allow_all;
    commit =
      (fun ~offset ~old ~data -> Nklog.append log ~offset ~old ~data);
  }

let both a b =
  {
    name = a.name ^ "+" ^ b.name;
    mediate =
      (fun ~offset ~old ~data ->
        match a.mediate ~offset ~old ~data with
        | Deny _ as d -> d
        | Allow -> b.mediate ~offset ~old ~data);
    commit =
      (fun ~offset ~old ~data ->
        a.commit ~offset ~old ~data;
        b.commit ~offset ~old ~data);
  }
