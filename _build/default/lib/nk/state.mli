open Nkhw

(** Nested-kernel state: everything the trusted domain owns.

    One value of this type exists per machine after {!Init.boot}; the
    outer kernel holds a reference but can only act on it through the
    mediated operations in {!Vmmu} and {!Wp_service} — every mutation
    of protected physical state happens between a gate entry and a gate
    exit with the nested-kernel stack lock held. *)

type wd = {
  wd_id : int;
  wd_base : Addr.va;  (** first byte of the protected region *)
  wd_size : int;
  wd_policy : Policy.t;
  mutable wd_active : bool;
  wd_from_heap : bool;  (** allocated by [nk_alloc] (vs declared) *)
}
(** A write descriptor (paper Table 1). *)

type t = {
  machine : Machine.t;
  gate : Gate.t;
  descs : Pgdesc.t;
  heap : Pheap.t;
  root_pml4 : Addr.frame;
  idt_va : Addr.va;
  nk_first_frame : Addr.frame;
  nk_frame_count : int;
  write_descriptors : (int, wd) Hashtbl.t;
  pcid_roots : (int, Addr.frame) Hashtbl.t;
      (** last root loaded under each PCID; a tagged switch back to the
          same (pcid, root) pair needs no TLB flush *)
  mutable next_wd_id : int;
  mutable lock_held : bool;
  mutable denied_writes : int;
      (** mediation rejections observed (diagnostics) *)
}

val is_nk_frame : t -> Addr.frame -> bool
(** Frame inside the nested kernel's reserved physical range. *)

val with_gate :
  t -> (unit -> ('a, Nk_error.t) result) -> ('a, Nk_error.t) result
(** Run a nested-kernel operation body between an entry-gate and
    exit-gate crossing, holding the nested-kernel stack lock.  Fails
    with [Reentrant_call] if the lock is already held and
    [Gate_failure] if a crossing does not complete. *)

val register_wd : t -> wd -> unit
val find_wd : t -> int -> wd option

val entry_va_of_pte : ptp:Addr.frame -> index:int -> Addr.va
(** Kernel direct-map virtual address of a page-table entry; nested
    kernel internals write PTEs through this mapping. *)
