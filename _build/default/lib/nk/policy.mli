(** Mediation policies for the write-protection service (paper
    sections 2.4 and 4.1).

    A policy is consulted by [nk_write] before any byte is modified
    ([mediate]) and informed after a permitted write has been performed
    ([commit]).  Policies are trusted code inside the nested kernel's
    TCB, as in the paper's prototype (section 3.9); they never write to
    protected memory themselves. *)

type decision = Allow | Deny of string

type t = {
  name : string;
  mediate : offset:int -> old:bytes -> data:bytes -> decision;
  commit : offset:int -> old:bytes -> data:bytes -> unit;
}

val unrestricted : t
(** Every write through [nk_write] is permitted.  Still valuable: all
    other stores to the region fault, so stray memory-corrupting
    writes are stopped (paper section 2.4). *)

val no_write : t
(** Constant data: reject everything. *)

type write_once_state

val write_once_state : size:int -> write_once_state
val write_once : write_once_state -> t
(** Byte-granularity write-once: a per-byte bitmap tracks which bytes
    have been written; a write is allowed only if none of its target
    bytes has been written before (paper section 4.1.1). *)

val written_bytes : write_once_state -> int

type append_state

val append_state : ?allow_gaps:bool -> size:int -> unit -> append_state
val append_only : append_state -> t
(** Writes must land at (or, with [allow_gaps], beyond) the current
    tail; existing data can never be overwritten (paper section
    4.1.2). *)

val tail : append_state -> int
val remaining : append_state -> int

val reset_append : append_state -> unit
(** Model of "flush to disk when full": empties the buffer.  Invoked
    by nested-kernel code only. *)

val write_log : Nklog.t -> t
(** Allow all writes but record each one — offset, old bytes, new
    bytes — in the nested-kernel log (paper section 4.1.3). *)

val both : t -> t -> t
(** Conjunction: allowed only if both policies allow; both commits
    run. *)
