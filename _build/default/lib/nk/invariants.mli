(** Runtime audit of the nested-kernel invariants (paper section 3.2).

    Walks the live machine and nested-kernel state and reports every
    violated invariant.  Used by the test suite (a healthy system
    audits clean; injected corruptions are caught) and available to
    operators as a tripwire. *)

type violation = { invariant : string; detail : string }

val audit : State.t -> violation list
(** Empty when all invariants hold.  Checks, by paper number:
    I1/I5 (active mappings of protected pages are read-only),
    I4 (table links target declared PTPs of the right level),
    I6 (CR3 roots at a declared PML4),
    I7/I8 (CR0.PE/PG/WP set while the outer kernel runs),
    I10 (SMM owned by the nested kernel),
    I12 (IDT write-protected, IDTR pointing at it, vectors routed
    through the trap gate),
    I13 (nested-kernel stack write-protected),
    plus code-integrity state (EFER.NX/LME, CR4.SMEP, no writable+
    executable supervisor page) and IOMMU coverage of every protected
    frame, and consistency of the descriptor reverse maps with the
    hardware page tables. *)

val audit_ok : State.t -> bool
val pp_violation : Format.formatter -> violation -> unit
