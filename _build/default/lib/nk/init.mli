open Nkhw

(** Secure boot and nested-kernel initialization (paper section 3.3).

    Runs before any outer-kernel code: builds the initial page tables
    (kernel direct map), installs the gate code and the IDT, assigns a
    security type to every physical page, write-protects everything
    the nested kernel owns, arms the IOMMU and SMM ownership, and
    finally enables long-mode paging with WP set — establishing
    Invariants I3 and I7 before the outer kernel can execute. *)

type boot_layout = {
  gate_frames : int;
  stack_frames : int;
  idt_frames : int;
  heap_frames : int;  (** protected heap for [nk_alloc] *)
  ptp_pool_frames : int;  (** boot page-table pages *)
}

val default_layout : total_frames:int -> boot_layout
(** Sizes the boot PTP pool for the direct map of [total_frames] and
    gives the protected heap 256 frames (1 MiB). *)

val boot : ?layout:boot_layout -> Machine.t -> (State.t, string) result
(** Initialize the nested kernel on a fresh machine.  On return the
    machine runs in long mode with WP enforced and the outer kernel
    may begin executing (all further MMU changes must go through
    {!Vmmu}). *)

val outer_first_frame : State.t -> Addr.frame
(** First physical frame not owned by the nested kernel: the start of
    the outer kernel's allocatable pool. *)
