open Nkhw
open Nested_kernel

let test_clean_code () =
  let code = Insn.assemble_raw Insn.[ Nop; Mov_ri (RAX, 5); Ret ] in
  Alcotest.(check bool) "clean" true (Scanner.is_clean code);
  Alcotest.(check int) "no findings" 0 (List.length (Scanner.scan code))

let test_explicit_detection () =
  let code = Insn.assemble_raw Insn.[ Nop; Mov_to_cr (CR0, RAX); Wrmsr ] in
  let findings = Scanner.scan code in
  Alcotest.(check int) "two findings" 2 (List.length findings);
  Alcotest.(check bool) "both explicit" true
    (List.for_all (fun f -> f.Scanner.explicit) findings)

let test_implicit_classification () =
  let imm = 0x300F lsl 8 in
  let code = Insn.assemble_raw Insn.[ Mov_ri (RAX, imm) ] in
  match Scanner.scan code with
  | [ f ] ->
      Alcotest.(check bool) "implicit" false f.Scanner.explicit;
      Alcotest.(check bool) "wrmsr kind" true (f.Scanner.kind = Insn.P_wrmsr)
  | _ -> Alcotest.fail "expected one finding"

let test_summarize () =
  let program = Nk_workloads.Binary_gen.paper_kernel () in
  let s = Scanner.summarize (Scanner.scan (Insn.assemble program)) in
  Alcotest.(check int) "total" 40 s.Scanner.total;
  Alcotest.(check int) "explicit" 0 s.Scanner.explicit_count;
  Alcotest.(check int) "cr0" 2 s.Scanner.implicit_cr0;
  Alcotest.(check int) "wrmsr" 38 s.Scanner.implicit_wrmsr

let test_deprivilege_rejects_explicit () =
  let program = Insn.[ Ins Nop; Ins (Mov_to_cr (CR0, RAX)); Ins Ret ] in
  match Scanner.deprivilege program with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "explicit protected instruction accepted"

let test_deprivilege_mov_ri () =
  let imm = (0x0F lsl 24) lor (0x22 lsl 32) lor (0xC0 lsl 40) lor 0x1234 in
  let program = Insn.[ Ins (Mov_ri (RBX, imm)); Ins Ret ] in
  match Scanner.deprivilege program with
  | Error msg -> Alcotest.fail msg
  | Ok (clean, stats) ->
      Alcotest.(check bool) "rescan clean" true
        (Scanner.is_clean (Insn.assemble clean));
      Alcotest.(check int) "one constant split" 1 stats.Scanner.constants_split;
      (* Semantics: run both and compare RBX. *)
      let run items =
        let m = Machine.create ~frames:16 () in
        Phys_mem.write_bytes m.Machine.mem 0x1000
          (Insn.assemble
             (List.filter (function Insn.Ins Insn.Ret -> false | _ -> true) items
             @ [ Insn.Ins Insn.Hlt ]));
        m.Machine.cpu.Cpu_state.rip <- 0x1000;
        ignore (Exec.run ~fuel:100 m);
        Cpu_state.get m.Machine.cpu Insn.RBX
      in
      Alcotest.(check int) "value preserved" (run program) (run clean)

let test_deprivilege_branch_nop () =
  (* A branch whose displacement bytes contain 0F 30: the rewriter must
     shift it with a nop between branch and target. *)
  let filler = List.init 0x300F (fun _ -> Insn.Ins Insn.Nop) in
  let program =
    (Insn.Ins (Insn.Jmp (Insn.Label "end")) :: filler)
    @ Insn.[ Lbl "end"; Ins Ret ]
  in
  let code = Insn.assemble program in
  if Scanner.is_clean code then
    (* displacement didn't hit the pattern; adjust filler would be
       needed — treat as vacuous success. *)
    ()
  else
    match Scanner.deprivilege program with
    | Error msg -> Alcotest.fail msg
    | Ok (clean, stats) ->
        Alcotest.(check bool) "rescan clean" true
          (Scanner.is_clean (Insn.assemble clean));
        Alcotest.(check bool) "used nop insertion" true
          (stats.Scanner.nops_inserted > 0)

let gen_imm_with_pattern =
  QCheck2.Gen.(
    let* pos = int_range 0 4 in
    let* which = bool in
    let* noise = int_range 0 0xFFFF in
    let pattern = if which then [ 0x0F; 0x30 ] else [ 0x0F; 0x22; 0xC0 ] in
    let bytes = Array.make 8 0x55 in
    List.iteri (fun i b -> bytes.(pos + i) <- b) pattern;
    bytes.(7) <- noise land 0x7F;
    let imm = ref 0 in
    for i = 7 downto 0 do
      imm := (!imm lsl 8) lor bytes.(i)
    done;
    return !imm)

let prop_deprivilege_random_immediates =
  Helpers.qtest ~count:150 "random dirty immediates always cleaned"
    QCheck2.Gen.(pair gen_imm_with_pattern (oneofl Insn.all_regs))
    (fun (imm, reg) ->
      let program =
        Insn.
          [
            Ins (Mov_ri (reg, imm));
            Ins (Add_ri (reg, imm));
            Ins (Or_ri (reg, imm land 0xFFFFFFF));
            Ins (Test_ri (reg, imm));
            Ins Ret;
          ]
      in
      match Scanner.deprivilege program with
      | Error _ -> false
      | Ok (clean, _) -> Scanner.is_clean (Insn.assemble clean))

let prop_generated_kernels_clean_after_rewrite =
  Helpers.qtest ~count:8 "generated kernels rewrite to zero findings"
    QCheck2.Gen.(triple (int_range 1 500) (int_range 0 4) (int_range 0 12))
    (fun (seed, cr0, wrmsr) ->
      let program =
        Nk_workloads.Binary_gen.generate ~seed ~benign_blocks:60
          ~implicit_cr0:cr0 ~implicit_wrmsr:wrmsr ()
      in
      let s = Scanner.summarize (Scanner.scan (Insn.assemble program)) in
      s.Scanner.implicit_cr0 = cr0
      && s.Scanner.implicit_wrmsr = wrmsr
      &&
      match Scanner.deprivilege program with
      | Error _ -> false
      | Ok (clean, _) -> Scanner.is_clean (Insn.assemble clean))

let prop_semantics_preserved =
  Helpers.qtest ~count:8 "straight-line semantics preserved by rewrite"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let program =
        Nk_workloads.Binary_gen.generate ~seed ~benign_blocks:40 ~implicit_cr0:1
          ~implicit_wrmsr:3 ()
      in
      match Scanner.deprivilege program with
      | Error _ -> false
      | Ok (clean, _) ->
          Nk_workloads.Binary_gen.sample_outputs program
          = Nk_workloads.Binary_gen.sample_outputs clean)

let suite =
  [
    Alcotest.test_case "clean code" `Quick test_clean_code;
    Alcotest.test_case "explicit detection" `Quick test_explicit_detection;
    Alcotest.test_case "implicit classification" `Quick
      test_implicit_classification;
    Alcotest.test_case "paper-kernel summary (5.2)" `Quick test_summarize;
    Alcotest.test_case "explicit instructions rejected" `Quick
      test_deprivilege_rejects_explicit;
    Alcotest.test_case "immediate splitting" `Quick test_deprivilege_mov_ri;
    Alcotest.test_case "branch displacement nop" `Quick test_deprivilege_branch_nop;
    prop_deprivilege_random_immediates;
    prop_generated_kernels_clean_after_rewrite;
    prop_semantics_preserved;
  ]
