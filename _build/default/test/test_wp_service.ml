open Nkhw
open Nested_kernel

let setup () = Helpers.booted_nk ()

let test_alloc_write_read () =
  let _, nk = setup () in
  match Api.nk_alloc nk ~size:64 Policy.unrestricted with
  | Error e -> Alcotest.failf "alloc: %s" (Nk_error.to_string e)
  | Ok (wd, va) -> (
      Helpers.check_ok "write"
        (Api.nk_write nk wd ~dest:va (Bytes.of_string "hello"));
      match Api.nk_read nk wd ~src:va ~len:5 with
      | Ok b -> Alcotest.(check string) "read back" "hello" (Bytes.to_string b)
      | Error e -> Alcotest.failf "read: %s" (Nk_error.to_string e))

let test_direct_store_faults () =
  let m, nk = setup () in
  let _, va =
    Result.get_ok (Api.nk_alloc nk ~size:64 Policy.unrestricted)
  in
  Helpers.expect_fault "direct store" (Machine.kwrite_u64 m va 1);
  (* Reads are unmediated: single address space. *)
  Helpers.check_ok "direct read fine" (Machine.kread_u64 m va)

let test_bounds () =
  let _, nk = setup () in
  let wd, va = Result.get_ok (Api.nk_alloc nk ~size:64 Policy.unrestricted) in
  (match Api.nk_write nk wd ~dest:(va + 60) (Bytes.make 8 'x') with
  | Error (Nk_error.Bad_bounds _) -> ()
  | Ok () | Error _ -> Alcotest.fail "overflow accepted");
  (match Api.nk_write nk wd ~dest:(va - 8) (Bytes.make 8 'x') with
  | Error (Nk_error.Bad_bounds _) -> ()
  | Ok () | Error _ -> Alcotest.fail "underflow accepted");
  match Api.nk_read nk wd ~src:va ~len:100 with
  | Error (Nk_error.Bad_bounds _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "oversized read accepted"

let test_sub_object_writes () =
  (* Byte granularity: writing a field of an aggregate needs no
     knowledge of the rest (paper section 2.4). *)
  let _, nk = setup () in
  let wd, va = Result.get_ok (Api.nk_alloc nk ~size:64 Policy.unrestricted) in
  Helpers.check_ok "field write"
    (Api.nk_write nk wd ~dest:(va + 17) (Bytes.of_string "zz"));
  let all = Result.get_ok (Api.nk_read nk wd ~src:va ~len:64) in
  Alcotest.(check string) "only those bytes changed" "zz"
    (Bytes.to_string (Bytes.sub all 17 2));
  Alcotest.(check int) "neighbour untouched" 0 (Bytes.get_uint8 all 19)

let test_policy_mediation_and_denial_count () =
  let _, nk = setup () in
  let wd, va =
    Result.get_ok
      (Api.nk_alloc nk ~size:16
         (Policy.write_once (Policy.write_once_state ~size:16)))
  in
  Helpers.check_ok "first" (Api.nk_write nk wd ~dest:va (Bytes.make 4 'a'));
  (match Api.nk_write nk wd ~dest:va (Bytes.make 4 'b') with
  | Error (Nk_error.Policy_violation { policy; _ }) ->
      Alcotest.(check string) "policy name" "write-once" policy
  | Ok () | Error _ -> Alcotest.fail "rewrite accepted");
  Alcotest.(check int) "denial counted" 1 (Api.denied_writes nk)

let test_denied_write_leaves_memory_intact () =
  let _, nk = setup () in
  let wd, va = Result.get_ok (Api.nk_alloc nk ~size:8 Policy.no_write) in
  ignore (Api.nk_write nk wd ~dest:va (Bytes.make 8 'x'));
  let b = Result.get_ok (Api.nk_read nk wd ~src:va ~len:8) in
  Alcotest.(check bytes) "memory untouched" (Bytes.make 8 '\000') b

let test_free_semantics () =
  let m, nk = setup () in
  let wd, va = Result.get_ok (Api.nk_alloc nk ~size:32 Policy.unrestricted) in
  Helpers.check_ok "free" (Api.nk_free nk wd);
  Helpers.expect_error "write after free"
    (Api.nk_write nk wd ~dest:va (Bytes.make 4 'x'));
  Helpers.expect_error "double free" (Api.nk_free nk wd);
  (* Freed protected memory stays protected (section 2.4)... *)
  Helpers.expect_fault "still protected" (Machine.kwrite_u64 m va 1);
  (* ...and is reusable only by a future nk_alloc. *)
  let _, va2 = Result.get_ok (Api.nk_alloc nk ~size:32 Policy.unrestricted) in
  Alcotest.(check int) "heap block reused" va va2

let test_declare_protects_kernel_memory () =
  let m, nk = setup () in
  let frame = Api.outer_first_frame nk + 3 in
  let base = Addr.kva_of_frame frame in
  Helpers.check_ok "plain write before" (Machine.kwrite_u64 m base 7);
  let wd =
    Result.get_ok (Api.nk_declare nk ~base ~size:256 Policy.unrestricted)
  in
  Helpers.expect_fault "in-place data now protected"
    (Machine.kwrite_u64 m base 8);
  Alcotest.(check bool) "DMA shielded too" true
    (Iommu.is_protected m.Machine.iommu frame);
  Helpers.check_ok "mediated write works"
    (Api.nk_write nk wd ~dest:base (Bytes.make 8 'y'));
  Alcotest.(check bool) "audit clean" true (Api.audit_ok nk)

let test_declare_rejects_bad_regions () =
  let _, nk = setup () in
  Helpers.expect_error "user address"
    (Api.nk_declare nk ~base:0x1000 ~size:16 Policy.unrestricted);
  Helpers.expect_error "nk-owned page"
    (Api.nk_declare nk ~base:(Addr.kva_of_frame 1) ~size:16 Policy.unrestricted)

let test_exhaustion () =
  let _, nk = setup () in
  match Api.nk_alloc nk ~size:(512 * Addr.page_size) Policy.unrestricted with
  | Error Nk_error.Out_of_protected_memory -> ()
  | Ok _ -> Alcotest.fail "heap larger than configured"
  | Error e -> Alcotest.failf "unexpected: %s" (Nk_error.to_string e)

let prop_mediated_writes_roundtrip =
  Helpers.qtest ~count:60 "mediated writes read back exactly"
    QCheck2.Gen.(
      list_size (int_range 1 20)
        (pair (int_range 0 56) (string_size ~gen:printable (int_range 1 8))))
    (fun writes ->
      let _, nk = Helpers.booted_nk () in
      let wd, va = Result.get_ok (Api.nk_alloc nk ~size:64 Policy.unrestricted) in
      let shadow = Bytes.make 64 '\000' in
      List.iter
        (fun (off, s) ->
          let data = Bytes.of_string s in
          if off + Bytes.length data <= 64 then begin
            match Api.nk_write nk wd ~dest:(va + off) data with
            | Ok () -> Bytes.blit data 0 shadow off (Bytes.length data)
            | Error _ -> ()
          end)
        writes;
      Bytes.equal (Result.get_ok (Api.nk_read nk wd ~src:va ~len:64)) shadow)

let suite =
  [
    Alcotest.test_case "alloc/write/read" `Quick test_alloc_write_read;
    Alcotest.test_case "direct stores fault" `Quick test_direct_store_faults;
    Alcotest.test_case "bounds checks" `Quick test_bounds;
    Alcotest.test_case "sub-object writes" `Quick test_sub_object_writes;
    Alcotest.test_case "policy mediation" `Quick
      test_policy_mediation_and_denial_count;
    Alcotest.test_case "denied writes change nothing" `Quick
      test_denied_write_leaves_memory_intact;
    Alcotest.test_case "free semantics" `Quick test_free_semantics;
    Alcotest.test_case "nk_declare protects in place" `Quick
      test_declare_protects_kernel_memory;
    Alcotest.test_case "nk_declare rejections" `Quick
      test_declare_rejects_bad_regions;
    Alcotest.test_case "heap exhaustion" `Quick test_exhaustion;
    prop_mediated_writes_roundtrip;
  ]
