open Nkhw

(* Build a small tree by hand with a bump allocator over the frames. *)
let setup () =
  let mem = Phys_mem.create ~frames:64 in
  let next = ref 1 in
  let alloc_ptp () =
    let f = !next in
    incr next;
    f
  in
  let root = alloc_ptp () in
  (mem, root, alloc_ptp)

let test_walk_unmapped () =
  let mem, root, _ = setup () in
  match Page_table.walk mem ~root 0x1234000 with
  | Page_table.Not_mapped { level } -> Alcotest.(check int) "fails at root" 4 level
  | Page_table.Mapped _ -> Alcotest.fail "unexpected mapping"

let test_map_and_walk () =
  let mem, root, alloc_ptp = setup () in
  let va = Addr.make_va ~pml4:5 ~pdpt:4 ~pd:3 ~pt:2 ~offset:0 in
  Pt_builder.map_page mem ~root ~alloc_ptp va (Pte.make ~frame:42 Pte.user_rw_nx);
  match Page_table.walk mem ~root (va + 123) with
  | Page_table.Mapped w ->
      Alcotest.(check int) "frame" 42 w.Page_table.frame;
      Alcotest.(check bool) "writable" true w.Page_table.writable;
      Alcotest.(check bool) "user" true w.Page_table.user;
      Alcotest.(check bool) "nx" true w.Page_table.nx;
      Alcotest.(check int) "leaf level" 1 w.Page_table.level
  | Page_table.Not_mapped _ -> Alcotest.fail "expected mapping"

let test_effective_permissions () =
  (* A read-only leaf under writable intermediates is effectively RO. *)
  let mem, root, alloc_ptp = setup () in
  let va = 0x200000 in
  Pt_builder.map_page mem ~root ~alloc_ptp va (Pte.make ~frame:9 Pte.user_ro_nx);
  (match Page_table.walk mem ~root va with
  | Page_table.Mapped w ->
      Alcotest.(check bool) "not writable" false w.Page_table.writable
  | Page_table.Not_mapped _ -> Alcotest.fail "mapped");
  (* Supervisor-only leaf under user intermediates is supervisor. *)
  Pt_builder.map_page mem ~root ~alloc_ptp (va + 4096)
    (Pte.make ~frame:10 Pte.kernel_rw);
  match Page_table.walk mem ~root (va + 4096) with
  | Page_table.Mapped w -> Alcotest.(check bool) "not user" false w.Page_table.user
  | Page_table.Not_mapped _ -> Alcotest.fail "mapped"

let test_translate () =
  let mem, root, alloc_ptp = setup () in
  Pt_builder.map_page mem ~root ~alloc_ptp 0x5000 (Pte.make ~frame:7 Pte.user_rw_nx);
  Alcotest.(check (option int)) "translate" (Some (0x7000 + 0x21))
    (Page_table.translate mem ~root (0x5000 + 0x21));
  Alcotest.(check (option int)) "unmapped" None
    (Page_table.translate mem ~root 0x9000)

let test_large_page () =
  let mem, root, alloc_ptp = setup () in
  (* Install a 2 MiB leaf at PD level by hand. *)
  let pdpt = alloc_ptp () and pd = alloc_ptp () in
  Page_table.set_entry mem ~ptp:root ~index:0 (Pte.make ~frame:pdpt Pte.kernel_rw);
  Page_table.set_entry mem ~ptp:pdpt ~index:0 (Pte.make ~frame:pd Pte.kernel_rw);
  Page_table.set_entry mem ~ptp:pd ~index:0
    (Pte.make ~frame:32 { Pte.kernel_rw with large = true });
  match Page_table.walk mem ~root (3 * 4096) with
  | Page_table.Mapped w ->
      Alcotest.(check int) "level 2 leaf" 2 w.Page_table.level;
      Alcotest.(check int) "base frame" 32 w.Page_table.frame
  | Page_table.Not_mapped _ -> Alcotest.fail "large page not found"

let test_entry_pa_bounds () =
  Alcotest.check_raises "bad index"
    (Invalid_argument "Page_table.entry_pa: index out of range") (fun () ->
      ignore (Page_table.entry_pa ~ptp:0 ~index:512))

let test_iter_tree () =
  let mem, root, alloc_ptp = setup () in
  Pt_builder.map_page mem ~root ~alloc_ptp 0x5000 (Pte.make ~frame:7 Pte.user_rw_nx);
  Pt_builder.map_page mem ~root ~alloc_ptp 0x6000 (Pte.make ~frame:8 Pte.user_rw_nx);
  let leaves = ref 0 and links = ref 0 in
  Page_table.iter_tree mem ~root (fun ~ptp:_ ~index:_ ~level pte ->
      if level = 1 || (level = 2 && Pte.is_large pte) then incr leaves
      else incr links);
  Alcotest.(check int) "leaves" 2 !leaves;
  Alcotest.(check int) "links (pdpt, pd, pt)" 3 !links

let test_iter_user_leaves_skips_kernel () =
  let mem, root, alloc_ptp = setup () in
  Pt_builder.map_page mem ~root ~alloc_ptp 0x5000 (Pte.make ~frame:7 Pte.user_rw_nx);
  Pt_builder.map_page mem ~root ~alloc_ptp (Addr.kva_of_frame 9)
    (Pte.make ~frame:9 Pte.kernel_rw);
  let seen = ref [] in
  Page_table.iter_user_leaves mem ~root (fun ~va ~ptp:_ ~index:_ _ ->
      seen := va :: !seen);
  Alcotest.(check (list int)) "only the user leaf" [ 0x5000 ] !seen

let prop_map_then_translate =
  Helpers.qtest "map then translate agrees" ~count:100
    QCheck2.Gen.(
      pair
        (quad (int_range 0 255) (int_range 0 511) (int_range 0 511)
           (int_range 0 511))
        (int_range 1 63))
    (fun ((a, b, c, d), frame) ->
      let mem, root, alloc_ptp = setup () in
      let va = Addr.make_va ~pml4:a ~pdpt:b ~pd:c ~pt:d ~offset:0 in
      Pt_builder.map_page mem ~root ~alloc_ptp va
        (Pte.make ~frame Pte.user_rw_nx);
      Page_table.translate mem ~root va = Some (Addr.pa_of_frame frame))

let suite =
  [
    Alcotest.test_case "walk unmapped" `Quick test_walk_unmapped;
    Alcotest.test_case "map and walk" `Quick test_map_and_walk;
    Alcotest.test_case "effective permissions AND" `Quick test_effective_permissions;
    Alcotest.test_case "translate" `Quick test_translate;
    Alcotest.test_case "2 MiB page" `Quick test_large_page;
    Alcotest.test_case "entry_pa bounds" `Quick test_entry_pa_bounds;
    Alcotest.test_case "iter_tree" `Quick test_iter_tree;
    Alcotest.test_case "iter_user_leaves skips kernel half" `Quick
      test_iter_user_leaves_skips_kernel;
    prop_map_then_translate;
  ]
