test/test_machine.ml: Addr Alcotest Bytes Clock Costs Helpers Machine Mmu Nested_kernel Nkhw QCheck2 Result
