test/test_wp_service.ml: Addr Alcotest Api Bytes Helpers Iommu List Machine Nested_kernel Nk_error Nkhw Policy QCheck2 Result
