test/test_fuzz.ml: Addr Array Bytes Config Cr Frame_alloc Helpers Insn Kernel List Machine Nested_kernel Nkhw Option Outer_kernel Pte QCheck2 Syscalls
