test/test_shadow.ml: Alcotest Helpers List Nested_kernel Nkhw Option Outer_kernel Result Shadow_proc
