test/test_kalloc_backend.ml: Addr Alcotest Config Frame_alloc Helpers Kalloc Kernel Ktypes List Machine Mmu_backend Nkhw Option Outer_kernel Phys_mem Pte String Syscall_table Tlb
