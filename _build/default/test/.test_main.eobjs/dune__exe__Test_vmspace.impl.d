test/test_vmspace.ml: Addr Alcotest Config Fault Frame_alloc Helpers Kernel Ktypes List Machine Mmu Nested_kernel Nkhw Os Outer_kernel Page_table Phys_mem Proc Pte Result Vmspace
