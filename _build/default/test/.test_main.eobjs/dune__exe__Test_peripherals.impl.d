test/test_peripherals.ml: Alcotest Bytes Char Clock Costs Dma Helpers Iommu Machine Nkhw Phys_mem Smm
