test/test_workloads.ml: Alcotest Apache Binary_gen Boundary Config Kbuild List Lmbench Nested_kernel Nk_workloads Nkhw Outer_kernel Printf Sshd
