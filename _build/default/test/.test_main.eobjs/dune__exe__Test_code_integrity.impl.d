test/test_code_integrity.ml: Addr Alcotest Api Bytes Cpu_state Exec Frame_alloc Helpers Insn Iommu Machine Nested_kernel Nk_error Nkhw Phys_mem Pte
