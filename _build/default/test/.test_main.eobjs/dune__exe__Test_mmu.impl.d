test/test_mmu.ml: Addr Alcotest Cr Fault Mmu Nkhw Page_table Phys_mem Pt_builder Pte Tlb
