test/test_insn.ml: Alcotest Array Buffer Bytes Helpers Insn List Nkhw QCheck2
