test/test_frame_alloc.ml: Alcotest Frame_alloc Helpers List Nkhw QCheck2
