test/test_smp.ml: Addr Alcotest Api Clock Costs Cpu_state Cr Gate Helpers Insn List Machine Nested_kernel Nk_error Nkhw Phys_mem Printf Pte Result Smp State
