test/test_phys_mem.ml: Alcotest Bytes Char Helpers Nkhw Phys_mem QCheck2 String
