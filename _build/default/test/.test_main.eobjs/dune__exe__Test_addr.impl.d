test/test_addr.ml: Addr Alcotest Helpers List Nkhw Printf QCheck2
