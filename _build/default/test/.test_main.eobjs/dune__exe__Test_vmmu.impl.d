test/test_vmmu.ml: Addr Alcotest Api Clock Cr Helpers Iommu List Machine Nested_kernel Nk_error Nkhw Page_table Phys_mem Pte State Tlb
