test/test_pte.ml: Alcotest Helpers Nkhw Pte QCheck2
