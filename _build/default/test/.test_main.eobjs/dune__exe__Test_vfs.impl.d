test/test_vfs.ml: Alcotest Bytes Clock Helpers Ktypes List Machine Nkhw Outer_kernel QCheck2 Result String Vfs
