test/test_tlb.ml: Alcotest Helpers Nkhw Option QCheck2 Tlb
