test/test_page_table.ml: Addr Alcotest Helpers Nkhw Page_table Phys_mem Pt_builder Pte QCheck2
