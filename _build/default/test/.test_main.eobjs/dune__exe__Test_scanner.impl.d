test/test_scanner.ml: Alcotest Array Cpu_state Exec Helpers Insn List Machine Nested_kernel Nk_workloads Nkhw Phys_mem QCheck2 Scanner
