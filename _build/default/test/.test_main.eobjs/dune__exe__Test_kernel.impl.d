test/test_kernel.ml: Addr Alcotest Clock Config Fault Frame_alloc Helpers Kernel Ktypes List Machine Nested_kernel Nkhw Option Outer_kernel Result Syscall_table Syscalls
