test/test_gate.ml: Addr Alcotest Api Clock Cpu_state Cr Exec Fault Gate Helpers Insn Machine Nested_kernel Nkhw Phys_mem Printf State
