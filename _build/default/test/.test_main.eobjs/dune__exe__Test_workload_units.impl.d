test/test_workload_units.ml: Alcotest Apache Astring_contains Binary_gen Boundary Bytes Config Format List Lmbench Nested_kernel Nk_workloads Nkhw Outer_kernel Sshd Stats
