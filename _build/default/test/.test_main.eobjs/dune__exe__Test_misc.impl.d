test/test_misc.ml: Addr Alcotest Config Cpu_state Exec Format Helpers Insn Kernel Kfd List Machine Nested_kernel Nk_workloads Nkhw Os Outer_kernel Phys_mem Proc Result String Syscalls Vfs
