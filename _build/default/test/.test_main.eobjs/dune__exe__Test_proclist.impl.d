test/test_proclist.ml: Alcotest Config Hashtbl Helpers Kernel List Machine Nkhw Option Outer_kernel Proclist QCheck2 Result
