test/test_pheap.ml: Alcotest Helpers List Nested_kernel Option Pheap QCheck2
