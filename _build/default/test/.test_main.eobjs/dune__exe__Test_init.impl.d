test/test_init.ml: Addr Alcotest Api Cr Gate Helpers Init Iommu Machine Nested_kernel Nk_error Nkhw Page_table Pgdesc Phys_mem Policy Result State
