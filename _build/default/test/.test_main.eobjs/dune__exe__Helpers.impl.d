test/helpers.ml: Alcotest Fault Format Machine Nested_kernel Nkhw Outer_kernel QCheck2 QCheck_alcotest
