test/test_policy.ml: Alcotest Array Bytes Fun Helpers List Nested_kernel Nklog Policy QCheck2
