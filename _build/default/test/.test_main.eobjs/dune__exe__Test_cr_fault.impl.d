test/test_cr_fault.ml: Addr Alcotest Astring_contains Bytes Cr Fault Helpers Ktypes List Nested_kernel Nk_error Nkhw Outer_kernel
