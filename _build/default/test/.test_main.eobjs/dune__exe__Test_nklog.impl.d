test/test_nklog.ml: Alcotest Bytes Helpers List Nested_kernel Nklog QCheck2
