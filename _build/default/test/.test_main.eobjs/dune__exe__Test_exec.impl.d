test/test_exec.ml: Alcotest Cpu_state Cr Exec Fault Insn Machine Nkhw Phys_mem Tlb
