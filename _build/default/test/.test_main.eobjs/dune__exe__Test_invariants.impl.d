test/test_invariants.ml: Addr Alcotest Api Cr Helpers Invariants Iommu List Machine Nested_kernel Nkhw Page_table Phys_mem Pte State
