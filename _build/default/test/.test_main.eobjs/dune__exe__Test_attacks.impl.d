test/test_attacks.ml: Alcotest Config Format Helpers Kernel List Nested_kernel Nk_attacks Option Outer_kernel Printf Proclist Result Shadow_proc Syscalls
