open Nkhw
open Outer_kernel

let setup () =
  let m = Machine.create ~frames:64 () in
  (m, Vfs.create m)

let test_open_missing () =
  let _, fs = setup () in
  match Vfs.open_ fs "/nope" ~create:false with
  | Error Ktypes.Enoent -> ()
  | _ -> Alcotest.fail "expected ENOENT"

let test_create_write_read () =
  let _, fs = setup () in
  let h = Result.get_ok (Vfs.open_ fs "/f" ~create:true) in
  Alcotest.(check (result int Helpers.errno)) "write" (Ok 5)
    (Vfs.write fs h (Bytes.of_string "hello"));
  Helpers.check_ok "seek" (Vfs.seek fs h 0);
  (match Vfs.read_bytes fs h 5 with
  | Ok b -> Alcotest.(check string) "read" "hello" (Bytes.to_string b)
  | Error _ -> Alcotest.fail "read");
  Alcotest.(check (result int Helpers.errno)) "eof" (Ok 0) (Vfs.read fs h 10);
  Helpers.check_ok "close" (Vfs.close fs h)

let test_sparse_file () =
  let _, fs = setup () in
  Vfs.add_sized_file fs "/big" (1 lsl 20);
  Alcotest.(check (option int)) "size" (Some (1 lsl 20)) (Vfs.file_size fs "/big");
  let h = Result.get_ok (Vfs.open_ fs "/big" ~create:false) in
  Alcotest.(check (result int Helpers.errno)) "read chunk" (Ok 8192)
    (Vfs.read fs h 8192);
  Alcotest.(check (result int Helpers.errno)) "next chunk advances" (Ok 8192)
    (Vfs.read fs h 8192)

let test_costs_charged () =
  let m, fs = setup () in
  let before = Clock.cycles m.Machine.clock in
  let h = Result.get_ok (Vfs.open_ fs "/f" ~create:true) in
  ignore (Vfs.write fs h (Bytes.make 8192 'x'));
  Alcotest.(check bool) "lookup + copy costs accumulated" true
    (Clock.cycles m.Machine.clock - before > 1000)

let test_unlink () =
  let _, fs = setup () in
  ignore (Vfs.open_ fs "/f" ~create:true);
  Helpers.check_ok "unlink" (Vfs.unlink fs "/f");
  Alcotest.(check bool) "gone" false (Vfs.exists fs "/f");
  match Vfs.unlink fs "/f" with
  | Error Ktypes.Enoent -> ()
  | _ -> Alcotest.fail "double unlink"

let test_stale_handle () =
  let _, fs = setup () in
  let h = Result.get_ok (Vfs.open_ fs "/f" ~create:true) in
  Helpers.check_ok "close" (Vfs.close fs h);
  match Vfs.read fs h 1 with
  | Error Ktypes.Ebadf -> ()
  | _ -> Alcotest.fail "expected EBADF"

let prop_write_read_roundtrip =
  Helpers.qtest ~count:60 "positioned writes read back"
    QCheck2.Gen.(list_size (int_range 1 10) (string_size ~gen:printable (int_range 1 64)))
    (fun chunks ->
      let _, fs = setup () in
      let h = Result.get_ok (Vfs.open_ fs "/f" ~create:true) in
      List.iter (fun s -> ignore (Vfs.write fs h (Bytes.of_string s))) chunks;
      ignore (Vfs.seek fs h 0);
      let expected = String.concat "" chunks in
      match Vfs.read_bytes fs h (String.length expected) with
      | Ok b -> Bytes.to_string b = expected
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "open missing" `Quick test_open_missing;
    Alcotest.test_case "create/write/read" `Quick test_create_write_read;
    Alcotest.test_case "sparse files" `Quick test_sparse_file;
    Alcotest.test_case "costs charged" `Quick test_costs_charged;
    Alcotest.test_case "unlink" `Quick test_unlink;
    Alcotest.test_case "stale handle" `Quick test_stale_handle;
    prop_write_read_roundtrip;
  ]
