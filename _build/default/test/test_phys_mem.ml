open Nkhw

let test_create () =
  let mem = Phys_mem.create ~frames:4 in
  Alcotest.(check int) "frames" 4 (Phys_mem.num_frames mem);
  Alcotest.(check int) "bytes" (4 * 4096) (Phys_mem.size_bytes mem);
  Alcotest.(check int) "zeroed" 0 (Phys_mem.read_u8 mem 0x2fff)

let test_u8 () =
  let mem = Phys_mem.create ~frames:2 in
  Phys_mem.write_u8 mem 100 0xAB;
  Alcotest.(check int) "read back" 0xAB (Phys_mem.read_u8 mem 100);
  Phys_mem.write_u8 mem 100 0x1FF;
  Alcotest.(check int) "truncated to byte" 0xFF (Phys_mem.read_u8 mem 100)

let test_u64 () =
  let mem = Phys_mem.create ~frames:2 in
  Phys_mem.write_u64 mem 0x100 0x1122334455667788;
  Alcotest.(check int) "read back" 0x1122334455667788
    (Phys_mem.read_u64 mem 0x100);
  Alcotest.(check int) "little endian low byte" 0x88 (Phys_mem.read_u8 mem 0x100)

let test_u64_straddle () =
  let mem = Phys_mem.create ~frames:2 in
  let pa = 4096 - 3 in
  Phys_mem.write_u64 mem pa 0x0102030405060708;
  Alcotest.(check int) "straddling read" 0x0102030405060708
    (Phys_mem.read_u64 mem pa);
  Alcotest.(check int) "byte in next frame" 0x05 (Phys_mem.read_u8 mem 4096)

let test_bytes_straddle () =
  let mem = Phys_mem.create ~frames:3 in
  let data = Bytes.init 6000 (fun i -> Char.chr (i land 0xff)) in
  Phys_mem.write_bytes mem 3000 data;
  let back = Phys_mem.read_bytes mem 3000 6000 in
  Alcotest.(check bytes) "bulk round trip across frames" data back

let test_bounds () =
  let mem = Phys_mem.create ~frames:1 in
  Alcotest.check_raises "read oob"
    (Invalid_argument "Phys_mem: access [0x1000, +1) out of range") (fun () ->
      ignore (Phys_mem.read_u8 mem 4096))

let test_zero_copy_frame () =
  let mem = Phys_mem.create ~frames:3 in
  Phys_mem.write_u64 mem 0x1010 42;
  Phys_mem.frame_copy mem ~src:1 ~dst:2;
  Alcotest.(check int) "copied" 42 (Phys_mem.read_u64 mem 0x2010);
  Phys_mem.zero_frame mem 2;
  Alcotest.(check int) "zeroed" 0 (Phys_mem.read_u64 mem 0x2010)

let prop_u64_roundtrip =
  Helpers.qtest "u64 round trip at arbitrary offsets"
    QCheck2.Gen.(pair (int_range 0 (2 * 4096 - 8)) (int_range 0 max_int))
    (fun (pa, v) ->
      let mem = Phys_mem.create ~frames:2 in
      Phys_mem.write_u64 mem pa v;
      Phys_mem.read_u64 mem pa = v land max_int)

let prop_bytes_roundtrip =
  Helpers.qtest "bytes round trip"
    QCheck2.Gen.(pair (int_range 0 4096) (string_size (int_range 0 5000)))
    (fun (pa, s) ->
      let mem = Phys_mem.create ~frames:3 in
      Phys_mem.write_bytes mem pa (Bytes.of_string s);
      Bytes.to_string (Phys_mem.read_bytes mem pa (String.length s)) = s)

let suite =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "byte access" `Quick test_u8;
    Alcotest.test_case "word access" `Quick test_u64;
    Alcotest.test_case "word straddling frames" `Quick test_u64_straddle;
    Alcotest.test_case "bulk straddling frames" `Quick test_bytes_straddle;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "zero and copy frames" `Quick test_zero_copy_frame;
    prop_u64_roundtrip;
    prop_bytes_roundtrip;
  ]
