open Nkhw

(* Machine-level accessors: permission checks on every page touched,
   cost accounting, IDT helpers. *)

let booted () = Helpers.booted_nk ()

let test_word_straddling_pages_checks_both () =
  let m, nk = booted () in
  (* Pick a boundary between a writable outer frame and a protected
     PTP frame: the PTP pool starts right before the outer pool, so
     frame boundary (outer_first - 1 | outer_first) has RO then RW.
     Build the opposite: write a word straddling from a writable frame
     into a protected one. *)
  let f_rw = Nested_kernel.Api.outer_first_frame nk in
  (* Protect the following frame via nk_declare. *)
  let protected_va = Addr.kva_of_frame (f_rw + 1) in
  let _ =
    Result.get_ok
      (Nested_kernel.Api.nk_declare nk ~base:protected_va ~size:16
         Nested_kernel.Policy.no_write)
  in
  let boundary = protected_va - 4 in
  Helpers.expect_fault "straddling write checks the second page"
    (Machine.kwrite_u64 m boundary 0xFFFF);
  Helpers.check_ok "word fully inside the writable page"
    (Machine.kwrite_u64 m (boundary - 8) 0xFFFF)

let test_bulk_write_partial_fault () =
  let m, nk = booted () in
  let f_rw = Nested_kernel.Api.outer_first_frame nk in
  let protected_va = Addr.kva_of_frame (f_rw + 1) in
  let _ =
    Result.get_ok
      (Nested_kernel.Api.nk_declare nk ~base:protected_va ~size:16
         Nested_kernel.Policy.no_write)
  in
  (* A bulk write starting in writable memory and running into the
     protected page must fault at the page boundary. *)
  let start = protected_va - 64 in
  Helpers.expect_fault "bulk write hits the protected page"
    (Machine.kwrite_bytes m start (Bytes.make 128 'x'))

let test_read_vs_write_rings () =
  let m, _ = booted () in
  let kva = Addr.kva_of_frame 1 in
  (* NK code page: supervisor read fine, user read faults. *)
  Helpers.check_ok "supervisor read" (Machine.read_u8 m ~ring:Mmu.Supervisor kva);
  Helpers.expect_fault "user read of kernel memory"
    (Machine.read_u8 m ~ring:Mmu.User kva)

let test_costs_charged_per_access () =
  let m, nk = booted () in
  let va = Addr.kva_of_frame (Nested_kernel.Api.outer_first_frame nk) in
  ignore (Machine.kread_u64 m va);
  let before = Clock.cycles m.Machine.clock in
  ignore (Machine.kread_u64 m va);
  let hit_cost = Clock.cycles m.Machine.clock - before in
  Alcotest.(check int) "TLB-hot read costs mem_insn"
    m.Machine.costs.Costs.mem_insn hit_cost

let test_idt_helpers () =
  let m, nk = booted () in
  (match Machine.idt_entry_va m 14 with
  | Some va -> Alcotest.(check int) "slot address" (nk.Nested_kernel.State.idt_va + 112) va
  | None -> Alcotest.fail "idt loaded");
  match Machine.read_idt_entry m 14 with
  | Ok h ->
      Alcotest.(check int) "handler is the trap gate"
        nk.Nested_kernel.State.gate.Nested_kernel.Gate.trap_va h
  | Error _ -> Alcotest.fail "entry readable"

let test_interrupt_queue_fifo () =
  let m = Machine.create ~frames:16 () in
  Machine.raise_interrupt m 3;
  Machine.raise_interrupt m 9;
  Alcotest.(check (list int)) "fifo order" [ 3; 9 ] m.Machine.pending_interrupts

let prop_rw_roundtrip_through_mmu =
  Helpers.qtest ~count:60 "machine word writes read back through the MMU"
    QCheck2.Gen.(pair (int_range 0 4000) (int_range 0 0x3FFFFFFF))
    (fun (off, v) ->
      let m, nk = booted () in
      let va = Addr.kva_of_frame (Nested_kernel.Api.outer_first_frame nk) + off in
      match Machine.kwrite_u64 m va v with
      | Error _ -> false
      | Ok () -> Machine.kread_u64 m va = Ok v)

let suite =
  [
    Alcotest.test_case "word straddling pages" `Quick
      test_word_straddling_pages_checks_both;
    Alcotest.test_case "bulk write partial fault" `Quick
      test_bulk_write_partial_fault;
    Alcotest.test_case "ring checks on reads" `Quick test_read_vs_write_rings;
    Alcotest.test_case "per-access cost accounting" `Quick
      test_costs_charged_per_access;
    Alcotest.test_case "IDT helpers" `Quick test_idt_helpers;
    Alcotest.test_case "interrupt queue order" `Quick test_interrupt_queue_fifo;
    prop_rw_roundtrip_through_mmu;
  ]
