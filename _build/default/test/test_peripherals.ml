open Nkhw

let test_iommu_basics () =
  let io = Iommu.create () in
  Alcotest.(check bool) "disabled by default" false (Iommu.enabled io);
  Alcotest.(check bool) "writes allowed when off" true (Iommu.write_allowed io 5);
  Iommu.protect_frame io 5;
  Alcotest.(check bool) "still allowed while off" true (Iommu.write_allowed io 5);
  Iommu.set_enabled io true;
  Alcotest.(check bool) "blocked when on" false (Iommu.write_allowed io 5);
  Alcotest.(check bool) "others fine" true (Iommu.write_allowed io 6);
  Iommu.unprotect_frame io 5;
  Alcotest.(check bool) "unprotected again" true (Iommu.write_allowed io 5)

let test_dma_write_read () =
  let m = Machine.create ~frames:8 () in
  let data = Bytes.of_string "device-data" in
  Helpers.check_ok "write" (Dma.write m ~pa:0x1800 data);
  match Dma.read m ~pa:0x1800 ~len:(Bytes.length data) with
  | Ok b -> Alcotest.(check bytes) "read back" data b
  | Error _ -> Alcotest.fail "read failed"

let test_dma_blocked () =
  let m = Machine.create ~frames:8 () in
  Iommu.set_enabled m.Machine.iommu true;
  Iommu.protect_frame m.Machine.iommu 2;
  (match Dma.write m ~pa:0x2000 (Bytes.make 4 'x') with
  | Error (Dma.Blocked_by_iommu 2) -> ()
  | Ok () | Error _ -> Alcotest.fail "expected IOMMU block");
  (* Multi-frame transfer aborts before touching the protected frame. *)
  match Dma.write m ~pa:(0x2000 - 8) (Bytes.make 32 'y') with
  | Error (Dma.Blocked_by_iommu 2) ->
      Alcotest.(check int) "first frame written" (Char.code 'y')
        (Phys_mem.read_u8 m.Machine.mem (0x2000 - 8))
  | Ok () | Error _ -> Alcotest.fail "expected block mid-transfer"

let test_dma_out_of_range () =
  let m = Machine.create ~frames:2 () in
  match Dma.write m ~pa:(2 * 4096 - 2) (Bytes.make 8 'x') with
  | Error (Dma.Out_of_range _) -> ()
  | Ok () | Error _ -> Alcotest.fail "expected out-of-range"

let test_smm_unprotected () =
  let m = Machine.create ~frames:8 () in
  let fired = ref false in
  Helpers.check_ok "install" (Smm.install_handler m (fun _ -> fired := true));
  Alcotest.(check bool) "payload runs" true (Smm.trigger_smi m = Smm.Executed);
  Alcotest.(check bool) "side effect" true !fired

let test_smm_locked () =
  let m = Machine.create ~frames:8 () in
  m.Machine.smm_owner <- Machine.Smm_nested_kernel;
  (match Smm.install_handler m (fun _ -> ()) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "install should be rejected");
  Alcotest.(check bool) "suppressed" true (Smm.trigger_smi m = Smm.Suppressed)

let test_smm_no_handler () =
  let m = Machine.create ~frames:8 () in
  Alcotest.(check bool) "no handler" true (Smm.trigger_smi m = Smm.No_handler)

let test_clock_counters () =
  let c = Clock.create () in
  Clock.charge c 100;
  Clock.count c "x";
  Clock.count_n c "x" 4;
  let snap = Clock.snapshot c in
  Clock.charge c 50;
  Clock.count c "x";
  Alcotest.(check int) "cycles" 150 (Clock.cycles c);
  Alcotest.(check int) "counter" 6 (Clock.counter c "x");
  Alcotest.(check int) "cycles since" 50 (Clock.cycles_since c snap);
  Alcotest.(check int) "counter since" 1 (Clock.counter_since c snap "x");
  Clock.reset c;
  Alcotest.(check int) "reset" 0 (Clock.cycles c)

let test_costs_calibration () =
  Alcotest.(check bool) "syscall/vmcall ratio as Table 3" true
    (let c = Costs.default in
     let r = float_of_int c.Costs.vmcall_roundtrip /. float_of_int c.Costs.syscall_roundtrip in
     r > 5.0 && r < 6.5);
  Alcotest.(check bool) "cycles_to_us at 3.4GHz" true
    (abs_float (Costs.cycles_to_us 3400 -. 1.0) < 1e-9)

let suite =
  [
    Alcotest.test_case "iommu basics" `Quick test_iommu_basics;
    Alcotest.test_case "dma write/read" `Quick test_dma_write_read;
    Alcotest.test_case "dma blocked by iommu" `Quick test_dma_blocked;
    Alcotest.test_case "dma out of range" `Quick test_dma_out_of_range;
    Alcotest.test_case "smm unprotected" `Quick test_smm_unprotected;
    Alcotest.test_case "smm locked by nk" `Quick test_smm_locked;
    Alcotest.test_case "smm without handler" `Quick test_smm_no_handler;
    Alcotest.test_case "clock counters" `Quick test_clock_counters;
    Alcotest.test_case "cost-model calibration" `Quick test_costs_calibration;
  ]
