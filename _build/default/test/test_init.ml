open Nkhw
open Nested_kernel

let test_boot_state () =
  let m, nk = Helpers.booted_nk () in
  Alcotest.(check bool) "long-mode paging on" true (Cr.long_mode_paging m.Machine.cr);
  Alcotest.(check bool) "WP armed (I7)" true (Cr.wp_enabled m.Machine.cr);
  Alcotest.(check bool) "SMEP" true (Cr.smep_enabled m.Machine.cr);
  Alcotest.(check bool) "NX" true (Cr.nx_enabled m.Machine.cr);
  Alcotest.(check bool) "IOMMU on" true (Iommu.enabled m.Machine.iommu);
  Alcotest.(check bool) "SMM owned" true
    (m.Machine.smm_owner = Machine.Smm_nested_kernel);
  Alcotest.(check int) "CR3 is the boot PML4" nk.State.root_pml4
    (Cr.root_frame m.Machine.cr)

let test_direct_map_complete () =
  let m, nk = Helpers.booted_nk () in
  let missing = ref 0 in
  for f = 0 to Phys_mem.num_frames m.Machine.mem - 1 do
    match
      Page_table.translate m.Machine.mem ~root:nk.State.root_pml4
        (Addr.kva_of_frame f)
    with
    | Some pa when pa = Addr.pa_of_frame f -> ()
    | Some _ | None -> incr missing
  done;
  Alcotest.(check int) "every frame mapped at its kva" 0 !missing

let test_page_types_protected () =
  let m, nk = Helpers.booted_nk () in
  (* Every nested-kernel-owned or PTP frame must be unwritable through
     the direct map while WP is on. *)
  let bad = ref 0 in
  Pgdesc.iter nk.State.descs (fun f d ->
      let protected_ =
        match d.Pgdesc.ptype with
        | Pgdesc.Ptp _ | Pgdesc.Nk_code | Pgdesc.Nk_data | Pgdesc.Nk_stack
        | Pgdesc.Protected_data ->
            true
        | _ -> false
      in
      if protected_ then
        match Machine.kwrite_u64 m (Addr.kva_of_frame f) 0 with
        | Ok () -> incr bad
        | Error _ -> ());
  Alcotest.(check int) "no protected frame writable" 0 !bad

let test_outer_memory_writable () =
  let m, nk = Helpers.booted_nk () in
  let f = Api.outer_first_frame nk + 11 in
  Helpers.check_ok "outer pool frame writable"
    (Machine.kwrite_u64 m (Addr.kva_of_frame f) 42)

let test_gate_code_executable_not_writable () =
  let m, nk = Helpers.booted_nk () in
  let g = nk.State.gate in
  Helpers.expect_fault "gate code immutable"
    (Machine.kwrite_u64 m g.Gate.entry_va 0);
  (* Executable: an interpreted crossing works. *)
  Helpers.check_ok "nk_null runs" (Api.nk_null nk)

let test_idt_covers_all_vectors () =
  let m, nk = Helpers.booted_nk () in
  let ok = ref true in
  for v = 0 to 255 do
    match Machine.read_idt_entry m v with
    | Ok h when h = nk.State.gate.Gate.trap_va -> ()
    | _ -> ok := false
  done;
  Alcotest.(check bool) "all vectors -> trap gate" true !ok

let test_boot_too_small () =
  let m = Machine.create ~frames:64 () in
  match Api.boot m with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "boot should fail on a tiny machine"

let test_custom_layout () =
  let m = Machine.create ~frames:4096 () in
  let layout =
    {
      Init.gate_frames = 2;
      stack_frames = 2;
      idt_frames = 1;
      heap_frames = 16;
      ptp_pool_frames = 24;
    }
  in
  match Api.boot ~layout m with
  | Error e -> Alcotest.fail e
  | Ok nk ->
      Alcotest.(check int) "outer pool after small layout" 46
        (Api.outer_first_frame nk);
      Alcotest.(check bool) "audits clean" true (Api.audit_ok nk)

let test_small_heap_exhausts () =
  let m = Machine.create ~frames:4096 () in
  let layout =
    {
      Init.gate_frames = 2;
      stack_frames = 2;
      idt_frames = 1;
      heap_frames = 2;
      ptp_pool_frames = 24;
    }
  in
  let nk = Result.get_ok (Api.boot ~layout m) in
  match Api.nk_alloc nk ~size:(3 * Addr.page_size) Policy.unrestricted with
  | Error Nk_error.Out_of_protected_memory -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected exhaustion"

let suite =
  [
    Alcotest.test_case "boot state (I3/I7)" `Quick test_boot_state;
    Alcotest.test_case "direct map complete" `Quick test_direct_map_complete;
    Alcotest.test_case "protected frames unwritable" `Quick
      test_page_types_protected;
    Alcotest.test_case "outer memory writable" `Quick test_outer_memory_writable;
    Alcotest.test_case "gate code RX" `Quick test_gate_code_executable_not_writable;
    Alcotest.test_case "IDT covers all vectors (I12)" `Quick
      test_idt_covers_all_vectors;
    Alcotest.test_case "boot fails on tiny machine" `Quick test_boot_too_small;
    Alcotest.test_case "custom layout" `Quick test_custom_layout;
    Alcotest.test_case "small heap exhausts" `Quick test_small_heap_exhausts;
  ]
