open Nested_kernel

let no_old n = Bytes.make n '\000'

let mediate (p : Policy.t) ~offset data =
  p.Policy.mediate ~offset ~old:(no_old (Bytes.length data)) ~data

let commit (p : Policy.t) ~offset data =
  p.Policy.commit ~offset ~old:(no_old (Bytes.length data)) ~data

let write p ~offset data =
  match mediate p ~offset data with
  | Policy.Allow ->
      commit p ~offset data;
      true
  | Policy.Deny _ -> false

let test_unrestricted () =
  Alcotest.(check bool) "allows" true
    (write Policy.unrestricted ~offset:5 (Bytes.make 3 'x'))

let test_no_write () =
  Alcotest.(check bool) "denies" false
    (write Policy.no_write ~offset:0 (Bytes.make 1 'x'))

let test_write_once_basic () =
  let p = Policy.write_once (Policy.write_once_state ~size:16) in
  Alcotest.(check bool) "first write" true (write p ~offset:0 (Bytes.make 8 'a'));
  Alcotest.(check bool) "rewrite denied" false
    (write p ~offset:4 (Bytes.make 2 'b'));
  Alcotest.(check bool) "fresh bytes fine" true
    (write p ~offset:8 (Bytes.make 8 'c'));
  Alcotest.(check bool) "out of bitmap" false
    (write p ~offset:12 (Bytes.make 8 'd'))

let test_write_once_counter () =
  let st = Policy.write_once_state ~size:16 in
  let p = Policy.write_once st in
  ignore (write p ~offset:0 (Bytes.make 5 'x'));
  Alcotest.(check int) "written counter" 5 (Policy.written_bytes st)

let test_append_only_basic () =
  let st = Policy.append_state ~size:32 () in
  let p = Policy.append_only st in
  Alcotest.(check bool) "append at tail" true
    (write p ~offset:0 (Bytes.make 8 'a'));
  Alcotest.(check int) "tail advanced" 8 (Policy.tail st);
  Alcotest.(check bool) "rewind denied" false
    (write p ~offset:0 (Bytes.make 4 'b'));
  Alcotest.(check bool) "gap denied" false
    (write p ~offset:16 (Bytes.make 4 'b'));
  Alcotest.(check bool) "next append" true (write p ~offset:8 (Bytes.make 24 'c'));
  Alcotest.(check bool) "full" false (write p ~offset:32 (Bytes.make 1 'd'));
  Alcotest.(check int) "remaining" 0 (Policy.remaining st)

let test_append_only_gaps_allowed () =
  let st = Policy.append_state ~allow_gaps:true ~size:32 () in
  let p = Policy.append_only st in
  Alcotest.(check bool) "gap allowed" true
    (write p ~offset:16 (Bytes.make 4 'a'));
  Alcotest.(check bool) "but never backwards" false
    (write p ~offset:8 (Bytes.make 4 'b'))

let test_append_reset () =
  let st = Policy.append_state ~size:16 () in
  let p = Policy.append_only st in
  ignore (write p ~offset:0 (Bytes.make 16 'a'));
  Policy.reset_append st;
  Alcotest.(check bool) "writable after flush" true
    (write p ~offset:0 (Bytes.make 8 'b'))

let test_write_log_records () =
  let log = Nklog.create () in
  let p = Policy.write_log log in
  let old = Bytes.of_string "aaaa" in
  (match p.Policy.mediate ~offset:4 ~old ~data:(Bytes.of_string "bbbb") with
  | Policy.Allow -> p.Policy.commit ~offset:4 ~old ~data:(Bytes.of_string "bbbb")
  | Policy.Deny _ -> Alcotest.fail "write-log must allow");
  match Nklog.records log with
  | [ r ] ->
      Alcotest.(check int) "offset" 4 r.Nklog.offset;
      Alcotest.(check string) "old" "aaaa" r.Nklog.old;
      Alcotest.(check string) "new" "bbbb" r.Nklog.data
  | _ -> Alcotest.fail "expected one record"

let test_both () =
  let log = Nklog.create () in
  let st = Policy.append_state ~size:8 () in
  let p = Policy.both (Policy.append_only st) (Policy.write_log log) in
  Alcotest.(check bool) "conjunction allows" true
    (write p ~offset:0 (Bytes.make 4 'x'));
  Alcotest.(check bool) "conjunction denies" false
    (write p ~offset:0 (Bytes.make 4 'y'));
  Alcotest.(check int) "only allowed write logged" 1 (Nklog.length log)

let prop_write_once_no_byte_twice =
  Helpers.qtest "write-once never lets a byte be written twice"
    QCheck2.Gen.(list_size (int_range 1 60) (pair (int_range 0 31) (int_range 1 8)))
    (fun writes ->
      let p = Policy.write_once (Policy.write_once_state ~size:32) in
      let written = Array.make 32 false in
      List.for_all
        (fun (offset, len) ->
          let data = Bytes.make len 'x' in
          let fresh =
            offset + len <= 32
            && List.for_all
                 (fun i -> not written.(offset + i))
                 (List.init len Fun.id)
          in
          let allowed = write p ~offset data in
          if allowed then
            for i = offset to offset + len - 1 do
              written.(i) <- true
            done;
          allowed = fresh)
        writes)

let prop_append_only_contiguous =
  Helpers.qtest "append-only accepts exactly tail-contiguous writes"
    QCheck2.Gen.(list_size (int_range 1 60) (pair (int_range 0 63) (int_range 1 8)))
    (fun writes ->
      let st = Policy.append_state ~size:64 () in
      let p = Policy.append_only st in
      List.for_all
        (fun (offset, len) ->
          let tail = Policy.tail st in
          let should = offset = tail && offset + len <= 64 in
          write p ~offset (Bytes.make len 'x') = should)
        writes)

let suite =
  [
    Alcotest.test_case "unrestricted" `Quick test_unrestricted;
    Alcotest.test_case "no-write" `Quick test_no_write;
    Alcotest.test_case "write-once" `Quick test_write_once_basic;
    Alcotest.test_case "write-once counter" `Quick test_write_once_counter;
    Alcotest.test_case "append-only" `Quick test_append_only_basic;
    Alcotest.test_case "append-only with gaps" `Quick test_append_only_gaps_allowed;
    Alcotest.test_case "append flush" `Quick test_append_reset;
    Alcotest.test_case "write-log records" `Quick test_write_log_records;
    Alcotest.test_case "policy conjunction" `Quick test_both;
    prop_write_once_no_byte_twice;
    prop_append_only_contiguous;
  ]
