open Nkhw
open Nested_kernel

let benign = Insn.assemble_raw Insn.[ Nop; Mov_ri (RAX, 7); Ret ]

let hostile =
  Insn.assemble_raw Insn.[ Mov_from_cr (RAX, CR0); Mov_to_cr (CR0, RAX); Ret ]

let setup () =
  let m, nk = Helpers.booted_nk () in
  let falloc =
    Frame_alloc.create ~first:(Api.outer_first_frame nk) ~count:256
  in
  (m, nk, falloc)

let test_validate () =
  Helpers.check_ok "benign validates" (Api.validate_code benign);
  match Api.validate_code hostile with
  | Error (Nk_error.Unvalidated_code { offset }) ->
      Alcotest.(check int) "offset of mov-to-cr" 3 offset
  | Ok () | Error _ -> Alcotest.fail "hostile code validated"

let test_install_and_execute () =
  let m, nk, falloc = setup () in
  let frame = Frame_alloc.alloc_exn falloc in
  Helpers.check_ok "install" (Api.install_code nk ~frames:[ frame ] benign);
  (* The installed code is executable at its direct-map address. *)
  m.Machine.cpu.Cpu_state.rip <- Addr.kva_of_frame frame;
  Cpu_state.set m.Machine.cpu Insn.RSP (Addr.kva_of_frame (frame + 100));
  Phys_mem.write_u64 m.Machine.mem (Addr.pa_of_frame (frame + 100) - 8) 0;
  (* Return address slot; executing until the Ret pops garbage is fine —
     stop at the Mov instead by fuel-bounding. *)
  ignore (Exec.run ~fuel:2 m);
  Alcotest.(check int) "ran" 7 (Cpu_state.get m.Machine.cpu Insn.RAX)

let test_install_rejects_hostile () =
  let _, nk, falloc = setup () in
  let frame = Frame_alloc.alloc_exn falloc in
  Helpers.expect_error "hostile rejected"
    (Api.install_code nk ~frames:[ frame ] hostile)

let test_installed_code_immutable () =
  let m, nk, falloc = setup () in
  let frame = Frame_alloc.alloc_exn falloc in
  Helpers.check_ok "install" (Api.install_code nk ~frames:[ frame ] benign);
  Helpers.expect_fault "patch faults"
    (Machine.kwrite_u64 m (Addr.kva_of_frame frame) 0);
  Alcotest.(check bool) "DMA shielded" true
    (Iommu.is_protected m.Machine.iommu frame)

let test_install_too_big () =
  let _, nk, falloc = setup () in
  let frame = Frame_alloc.alloc_exn falloc in
  Helpers.expect_error "more code than frames"
    (Api.install_code nk ~frames:[ frame ] (Bytes.make 5000 '\x90'))

let test_install_rejects_nk_frames () =
  let _, nk, _ = setup () in
  Helpers.expect_error "nk frame" (Api.install_code nk ~frames:[ 2 ] benign)

let test_retire () =
  let m, nk, falloc = setup () in
  let frame = Frame_alloc.alloc_exn falloc in
  Helpers.check_ok "install" (Api.install_code nk ~frames:[ frame ] benign);
  Helpers.check_ok "retire" (Api.retire_code nk ~frames:[ frame ]);
  Helpers.check_ok "writable again"
    (Machine.kwrite_u64 m (Addr.kva_of_frame frame) 0xAA);
  Alcotest.(check bool) "unshielded" false
    (Iommu.is_protected m.Machine.iommu frame)

let test_retire_while_mapped_rejected () =
  let _, nk, falloc = setup () in
  let frame = Frame_alloc.alloc_exn falloc in
  let pt = Frame_alloc.alloc_exn falloc in
  Helpers.check_ok "install" (Api.install_code nk ~frames:[ frame ] benign);
  Helpers.check_ok "declare pt" (Api.declare_ptp nk ~level:1 pt);
  Helpers.check_ok "map the module"
    (Api.write_pte nk ~ptp:pt ~index:0 (Pte.make ~frame Pte.user_rx));
  Helpers.expect_error "retire while mapped"
    (Api.retire_code nk ~frames:[ frame ])

let test_audit_clean_after_module_cycle () =
  let _, nk, falloc = setup () in
  let frame = Frame_alloc.alloc_exn falloc in
  Helpers.check_ok "install" (Api.install_code nk ~frames:[ frame ] benign);
  Helpers.check_ok "retire" (Api.retire_code nk ~frames:[ frame ]);
  Alcotest.(check bool) "audit" true (Api.audit_ok nk)

let suite =
  [
    Alcotest.test_case "validate" `Quick test_validate;
    Alcotest.test_case "install and execute" `Quick test_install_and_execute;
    Alcotest.test_case "hostile module rejected" `Quick test_install_rejects_hostile;
    Alcotest.test_case "installed code immutable" `Quick
      test_installed_code_immutable;
    Alcotest.test_case "oversized code rejected" `Quick test_install_too_big;
    Alcotest.test_case "nk frames rejected" `Quick test_install_rejects_nk_frames;
    Alcotest.test_case "retire" `Quick test_retire;
    Alcotest.test_case "retire while mapped rejected" `Quick
      test_retire_while_mapped_rejected;
    Alcotest.test_case "audit clean after module cycle" `Quick
      test_audit_clean_after_module_cycle;
  ]
