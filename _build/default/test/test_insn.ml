open Nkhw

let gen_reg = QCheck2.Gen.oneofl Insn.all_regs
let gen_cr = QCheck2.Gen.oneofl Insn.[ CR0; CR3; CR4 ]
let gen_imm = QCheck2.Gen.int_range 0 0x3FFF_FFFF_FFFF_FFFF
let gen_disp = QCheck2.Gen.int_range (-0x7FFFFFFF) 0x7FFFFFFF
let gen_rel = QCheck2.Gen.int_range (-100000) 100000

let gen_insn =
  QCheck2.Gen.(
    oneof
      [
        return Insn.Nop;
        return Insn.Hlt;
        return Insn.Pushfq;
        return Insn.Popfq;
        return Insn.Cli;
        return Insn.Sti;
        return Insn.Ret;
        return Insn.Wrmsr;
        return Insn.Rdmsr;
        map (fun r -> Insn.Push r) gen_reg;
        map (fun r -> Insn.Pop r) gen_reg;
        map2 (fun r i -> Insn.Mov_ri (r, i)) gen_reg gen_imm;
        map2 (fun a b -> Insn.Mov_rr (a, b)) gen_reg gen_reg;
        map3 (fun a b d -> Insn.Load (a, b, d)) gen_reg gen_reg gen_disp;
        map3 (fun a d b -> Insn.Store (a, d, b)) gen_reg gen_disp gen_reg;
        map2 (fun r i -> Insn.And_ri (r, i)) gen_reg gen_imm;
        map2 (fun r i -> Insn.Or_ri (r, i)) gen_reg gen_imm;
        map2 (fun r i -> Insn.Add_ri (r, i)) gen_reg gen_imm;
        map2 (fun a b -> Insn.Add_rr (a, b)) gen_reg gen_reg;
        map2 (fun r i -> Insn.Sub_ri (r, i)) gen_reg gen_imm;
        map2 (fun a b -> Insn.Xor_rr (a, b)) gen_reg gen_reg;
        map2 (fun r i -> Insn.Test_ri (r, i)) gen_reg gen_imm;
        map2 (fun r i -> Insn.Cmp_ri (r, i)) gen_reg gen_imm;
        map2 (fun a b -> Insn.Test_rr (a, b)) gen_reg gen_reg;
        map2 (fun a b -> Insn.Cmp_rr (a, b)) gen_reg gen_reg;
        map (fun d -> Insn.Jz (Insn.Rel d)) gen_rel;
        map (fun d -> Insn.Jnz (Insn.Rel d)) gen_rel;
        map (fun d -> Insn.Jmp (Insn.Rel d)) gen_rel;
        map (fun d -> Insn.Call (Insn.Rel d)) gen_rel;
        map (fun c -> Insn.Callout c) (int_range 0 1000);
        map2 (fun c r -> Insn.Mov_to_cr (c, r)) gen_cr gen_reg;
        map2 (fun r c -> Insn.Mov_from_cr (r, c)) gen_reg gen_cr;
        map (fun r -> Insn.Invlpg r) gen_reg;
      ])

let prop_encode_decode =
  Helpers.qtest ~count:500 "encode/decode round trip" gen_insn (fun insn ->
      let b = Buffer.create 16 in
      Insn.encode b insn;
      let code = Buffer.to_bytes b in
      match Insn.decode code 0 with
      | Some (insn', len) ->
          insn' = insn
          && len = Bytes.length code
          && len = Insn.encoded_length insn
      | None -> false)

let prop_disassemble_stream =
  Helpers.qtest ~count:200 "linear disassembly recovers the stream"
    QCheck2.Gen.(list_size (int_range 1 30) gen_insn)
    (fun insns ->
      let code = Insn.assemble_raw insns in
      let decoded = List.map snd (Insn.disassemble code) in
      decoded = insns)

let test_label_assembly () =
  let prog =
    Insn.
      [
        Ins (Mov_ri (RAX, 0));
        Lbl "loop";
        Ins (Add_ri (RAX, 1));
        Ins (Cmp_ri (RAX, 3));
        Ins (Jnz (Label "loop"));
        Ins Hlt;
      ]
  in
  let code = Insn.assemble prog in
  (* The backward branch displacement must bring us back to the add. *)
  match Insn.disassemble code with
  | [ _; _; _; (_, Insn.Jnz (Insn.Rel d)); _ ] ->
      Alcotest.(check int) "backward displacement" (-25) d
  | _ -> Alcotest.fail "unexpected disassembly"

let test_duplicate_label () =
  Alcotest.(check bool) "duplicate label rejected" true
    (try
       ignore (Insn.assemble Insn.[ Lbl "a"; Lbl "a"; Ins Hlt ]);
       false
     with Failure _ -> true)

let test_undefined_label () =
  Alcotest.(check bool) "undefined label rejected" true
    (try
       ignore (Insn.assemble Insn.[ Ins (Insn.Jmp (Insn.Label "nowhere")) ]);
       false
     with Failure _ -> true)

let test_protected_classification () =
  Alcotest.(check bool) "mov-to-cr protected" true
    (Insn.is_protected (Insn.Mov_to_cr (Insn.CR0, Insn.RAX)));
  Alcotest.(check bool) "wrmsr protected" true (Insn.is_protected Insn.Wrmsr);
  Alcotest.(check bool) "mov-from-cr fine" false
    (Insn.is_protected (Insn.Mov_from_cr (Insn.RAX, Insn.CR0)));
  Alcotest.(check bool) "rdmsr fine" false (Insn.is_protected Insn.Rdmsr)

let test_find_explicit_patterns () =
  let code =
    Insn.assemble_raw
      Insn.[ Nop; Mov_to_cr (CR0, RAX); Nop; Wrmsr; Mov_to_cr (CR3, RBX) ]
  in
  let found = Insn.find_protected_patterns code in
  Alcotest.(check int) "three hits" 3 (List.length found);
  Alcotest.(check bool) "kinds" true
    (List.map snd found
    = Insn.[ P_mov_cr CR0; P_wrmsr; P_mov_cr CR3 ])

let test_find_implicit_pattern () =
  (* 0F 30 hidden inside an immediate. *)
  let imm = 0x300F lsl 16 in
  let code = Insn.assemble_raw Insn.[ Mov_ri (RBX, imm) ] in
  match Insn.find_protected_patterns code with
  | [ (off, Insn.P_wrmsr) ] -> Alcotest.(check int) "offset inside imm" 3 off
  | _ -> Alcotest.fail "expected exactly one implicit wrmsr"

let prop_planted_pattern_found =
  Helpers.qtest ~count:300 "planted pattern is always found"
    QCheck2.Gen.(pair (int_range 0 5) (int_range 0 2))
    (fun (pos, which) ->
      let pattern =
        match which with
        | 0 -> [ 0x0F; 0x30 ]
        | 1 -> [ 0x0F; 0x22; 0xC0 ]
        | _ -> [ 0x0F; 0x22; 0xD8 ]
      in
      if pos + List.length pattern > 7 then true
      else begin
        let bytes = Array.make 8 0x41 in
        List.iteri (fun i b -> bytes.(pos + i) <- b) pattern;
        let imm = ref 0 in
        for i = 6 downto 0 do
          imm := (!imm lsl 8) lor bytes.(i)
        done;
        let code = Insn.assemble_raw Insn.[ Mov_ri (RBX, !imm) ] in
        Insn.find_protected_patterns code <> []
      end)

let suite =
  [
    prop_encode_decode;
    prop_disassemble_stream;
    Alcotest.test_case "label assembly" `Quick test_label_assembly;
    Alcotest.test_case "duplicate labels" `Quick test_duplicate_label;
    Alcotest.test_case "undefined labels" `Quick test_undefined_label;
    Alcotest.test_case "protected classification" `Quick
      test_protected_classification;
    Alcotest.test_case "explicit pattern scan" `Quick test_find_explicit_patterns;
    Alcotest.test_case "implicit pattern scan" `Quick test_find_implicit_pattern;
    prop_planted_pattern_found;
  ]
