open Outer_kernel

let setup () =
  let _, nk = Helpers.booted_nk () in
  (nk, Result.get_ok (Shadow_proc.create nk ~capacity:8))

let test_insert_and_pids () =
  let _, s = setup () in
  Helpers.check_ok "insert" (Shadow_proc.on_insert s 5 ~node_va:0x1000);
  Helpers.check_ok "insert" (Shadow_proc.on_insert s 9 ~node_va:0x2000);
  Alcotest.(check (list int)) "pids" [ 5; 9 ] (List.sort compare (Shadow_proc.pids s));
  Alcotest.(check int) "count" 2 (Shadow_proc.entry_count s)

let test_remove () =
  let _, s = setup () in
  Helpers.check_ok "insert" (Shadow_proc.on_insert s 5 ~node_va:0x1000);
  Helpers.check_ok "remove" (Shadow_proc.on_remove s 5);
  Alcotest.(check (list int)) "empty" [] (Shadow_proc.pids s);
  (match Shadow_proc.on_remove s 5 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double remove accepted")

let test_capacity () =
  let _, s = setup () in
  for pid = 1 to 8 do
    Helpers.check_ok "fill" (Shadow_proc.on_insert s pid ~node_va:(pid * 0x1000))
  done;
  (match Shadow_proc.on_insert s 9 ~node_va:0x9000 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overflow accepted");
  (* Slots are recycled after removal. *)
  Helpers.check_ok "remove" (Shadow_proc.on_remove s 3);
  Helpers.check_ok "slot reused" (Shadow_proc.on_insert s 9 ~node_va:0x9000)

let test_slot_of_pid () =
  let _, s = setup () in
  Helpers.check_ok "insert" (Shadow_proc.on_insert s 5 ~node_va:0x1000);
  Alcotest.(check bool) "slot found" true (Shadow_proc.slot_of_pid s 5 <> None);
  Alcotest.(check (option int)) "missing pid" None (Shadow_proc.slot_of_pid s 6)

let test_every_update_logged () =
  let _, s = setup () in
  Helpers.check_ok "insert" (Shadow_proc.on_insert s 5 ~node_va:0x1000);
  Helpers.check_ok "remove" (Shadow_proc.on_remove s 5);
  Alcotest.(check int) "two logged writes" 2
    (Nested_kernel.Nklog.length (Shadow_proc.log s))

let test_removal_history () =
  let _, s = setup () in
  Helpers.check_ok "insert 5" (Shadow_proc.on_insert s 5 ~node_va:0x1000);
  Helpers.check_ok "insert 7" (Shadow_proc.on_insert s 7 ~node_va:0x2000);
  Helpers.check_ok "remove 5" (Shadow_proc.on_remove s 5);
  Helpers.check_ok "remove 7" (Shadow_proc.on_remove s 7);
  (* Slot reuse must not confuse the forensic replay. *)
  Helpers.check_ok "insert 11" (Shadow_proc.on_insert s 11 ~node_va:0x3000);
  Helpers.check_ok "remove 11" (Shadow_proc.on_remove s 11);
  Alcotest.(check (list int)) "reconstructed removals in order" [ 5; 7; 11 ]
    (List.map fst (Shadow_proc.removal_history s))

let test_direct_store_fails () =
  let nk, s = setup () in
  Helpers.check_ok "insert" (Shadow_proc.on_insert s 5 ~node_va:0x1000);
  let slot = Option.get (Shadow_proc.slot_of_pid s 5) in
  Helpers.expect_fault "shadow list is protected memory"
    (Nkhw.Machine.kwrite_u64 (Nested_kernel.Api.machine nk) slot 0)

let suite =
  [
    Alcotest.test_case "insert and pids" `Quick test_insert_and_pids;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "capacity and recycling" `Quick test_capacity;
    Alcotest.test_case "slot lookup" `Quick test_slot_of_pid;
    Alcotest.test_case "every update logged" `Quick test_every_update_logged;
    Alcotest.test_case "removal history with slot reuse" `Quick
      test_removal_history;
    Alcotest.test_case "direct stores fault" `Quick test_direct_store_fails;
  ]
