open Nkhw

(* A machine with paging on and a few hand-built mappings exercising
   every permission combination the paper's invariants rely on. *)
let setup () =
  let mem = Phys_mem.create ~frames:64 in
  let cr = Cr.create () in
  let tlb = Tlb.create () in
  let next = ref 1 in
  let alloc_ptp () =
    let f = !next in
    incr next;
    f
  in
  let root = alloc_ptp () in
  let map va frame flags =
    Pt_builder.map_page mem ~root ~alloc_ptp va (Pte.make ~frame flags)
  in
  map 0x10000 40 Pte.user_rw_nx;
  map 0x11000 41 Pte.user_ro_nx;
  map 0x12000 42 Pte.user_rx;
  map 0x13000 43 Pte.kernel_rw;
  map 0x14000 44 Pte.kernel_ro;
  map 0x15000 45 Pte.kernel_ro_nx;
  cr.Cr.cr3 <- Addr.pa_of_frame root;
  cr.Cr.cr0 <- Cr.cr0_pe lor Cr.cr0_pg lor Cr.cr0_wp;
  cr.Cr.cr4 <- Cr.cr4_pae lor Cr.cr4_smep;
  cr.Cr.efer <- Cr.efer_lme lor Cr.efer_nx;
  (mem, cr, tlb)

let access (mem, cr, tlb) ~ring ~kind va = Mmu.access mem cr tlb ~ring ~kind va

let is_ok = function Ok _ -> true | Error _ -> false

let check name expected result =
  Alcotest.(check bool) name expected (is_ok result)

let test_supervisor_write_wp () =
  let ((_, cr, _) as s) = setup () in
  check "supervisor write to RW page" true
    (access s ~ring:Mmu.Supervisor ~kind:Fault.Write 0x13000);
  check "supervisor write to RO page blocked by WP" false
    (access s ~ring:Mmu.Supervisor ~kind:Fault.Write 0x14000);
  (* Clearing WP is exactly what lets the nested kernel write. *)
  cr.Cr.cr0 <- cr.Cr.cr0 land lnot Cr.cr0_wp;
  check "supervisor write to RO page with WP clear" true
    (access s ~ring:Mmu.Supervisor ~kind:Fault.Write 0x14000)

let test_user_protections () =
  let s = setup () in
  check "user read own page" true (access s ~ring:Mmu.User ~kind:Fault.Read 0x10000);
  check "user write RO page" false
    (access s ~ring:Mmu.User ~kind:Fault.Write 0x11000);
  check "user read supervisor page" false
    (access s ~ring:Mmu.User ~kind:Fault.Read 0x13000);
  (* WP only governs supervisor writes; user writes to RO always fault. *)
  let _, cr, _ = s in
  cr.Cr.cr0 <- cr.Cr.cr0 land lnot Cr.cr0_wp;
  check "user write RO page even with WP clear" false
    (access s ~ring:Mmu.User ~kind:Fault.Write 0x11000)

let test_nx () =
  let ((_, cr, _) as s) = setup () in
  check "exec of NX page" false (access s ~ring:Mmu.User ~kind:Fault.Exec 0x10000);
  check "exec of X page" true (access s ~ring:Mmu.User ~kind:Fault.Exec 0x12000);
  cr.Cr.efer <- cr.Cr.efer land lnot Cr.efer_nx;
  check "NX ignored when EFER.NX clear" true
    (access s ~ring:Mmu.User ~kind:Fault.Exec 0x10000)

let test_smep () =
  let ((_, cr, _) as s) = setup () in
  check "supervisor exec of user page blocked by SMEP" false
    (access s ~ring:Mmu.Supervisor ~kind:Fault.Exec 0x12000);
  cr.Cr.cr4 <- cr.Cr.cr4 land lnot Cr.cr4_smep;
  check "allowed when SMEP disabled" true
    (access s ~ring:Mmu.Supervisor ~kind:Fault.Exec 0x12000);
  check "supervisor exec of kernel RO page" true
    (access s ~ring:Mmu.Supervisor ~kind:Fault.Exec 0x14000)

let test_not_present () =
  let s = setup () in
  match access s ~ring:Mmu.User ~kind:Fault.Read 0x99000 with
  | Error (Fault.Page_fault { code; _ }) ->
      Alcotest.(check bool) "not-present bit" false code.Fault.present;
      Alcotest.(check bool) "user bit" true code.Fault.user
  | Ok _ | Error _ -> Alcotest.fail "expected a page fault"

let test_fault_code_bits () =
  let s = setup () in
  match access s ~ring:Mmu.Supervisor ~kind:Fault.Write 0x14000 with
  | Error (Fault.Page_fault { code; va }) ->
      Alcotest.(check bool) "present protection fault" true code.Fault.present;
      Alcotest.(check bool) "write" true code.Fault.write;
      Alcotest.(check bool) "supervisor" false code.Fault.user;
      Alcotest.(check int) "va" 0x14000 va
  | Ok _ | Error _ -> Alcotest.fail "expected a page fault"

let test_paging_off_identity () =
  let mem, cr, tlb = setup () in
  cr.Cr.cr0 <- 0;
  (match Mmu.access mem cr tlb ~ring:Mmu.Supervisor ~kind:Fault.Write 0x3456 with
  | Ok { pa; _ } -> Alcotest.(check int) "identity" 0x3456 pa
  | Error _ -> Alcotest.fail "raw access should succeed");
  match Mmu.access mem cr tlb ~ring:Mmu.Supervisor ~kind:Fault.Read 0x4000_0000 with
  | Error (Fault.General_protection _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "out-of-range physical access"

let test_stale_tlb_bypasses_update () =
  (* The hazard the nested kernel's shootdown discipline exists for: a
     downgraded PTE is not enforced until the TLB entry dies. *)
  let ((mem, cr, tlb) as s) = setup () in
  check "warm the TLB" true (access s ~ring:Mmu.Supervisor ~kind:Fault.Write 0x13000);
  (match Page_table.walk mem ~root:(Cr.root_frame cr) 0x13000 with
  | Page_table.Mapped w ->
      Page_table.set_entry mem ~ptp:w.Page_table.leaf_ptp
        ~index:w.Page_table.leaf_index
        (Pte.make ~frame:43 Pte.kernel_ro)
  | Page_table.Not_mapped _ -> Alcotest.fail "mapping disappeared");
  check "stale entry still allows the write" true
    (access s ~ring:Mmu.Supervisor ~kind:Fault.Write 0x13000);
  Tlb.flush_page tlb ~vpage:(Addr.vpage 0x13000);
  check "after shootdown the downgrade holds" false
    (access s ~ring:Mmu.Supervisor ~kind:Fault.Write 0x13000)

let suite =
  [
    Alcotest.test_case "WP on supervisor writes" `Quick test_supervisor_write_wp;
    Alcotest.test_case "user protections" `Quick test_user_protections;
    Alcotest.test_case "NX enforcement" `Quick test_nx;
    Alcotest.test_case "SMEP enforcement" `Quick test_smep;
    Alcotest.test_case "not-present faults" `Quick test_not_present;
    Alcotest.test_case "fault code bits" `Quick test_fault_code_bits;
    Alcotest.test_case "paging off = identity" `Quick test_paging_off_identity;
    Alcotest.test_case "stale TLB bypasses PTE update" `Quick
      test_stale_tlb_bypasses_update;
  ]
