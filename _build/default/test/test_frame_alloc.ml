open Nkhw

let test_basic () =
  let a = Frame_alloc.create ~first:10 ~count:5 in
  Alcotest.(check int) "total" 5 (Frame_alloc.total a);
  Alcotest.(check int) "free" 5 (Frame_alloc.free_count a);
  let f = Frame_alloc.alloc_exn a in
  Alcotest.(check bool) "in range" true (f >= 10 && f < 15);
  Alcotest.(check int) "free after alloc" 4 (Frame_alloc.free_count a);
  Frame_alloc.free a f;
  Alcotest.(check int) "free after free" 5 (Frame_alloc.free_count a)

let test_exhaustion () =
  let a = Frame_alloc.create ~first:0 ~count:2 in
  ignore (Frame_alloc.alloc_exn a);
  ignore (Frame_alloc.alloc_exn a);
  Alcotest.(check bool) "exhausted" true (Frame_alloc.alloc a = None)

let test_double_free () =
  let a = Frame_alloc.create ~first:0 ~count:2 in
  let f = Frame_alloc.alloc_exn a in
  Frame_alloc.free a f;
  Alcotest.check_raises "double free"
    (Invalid_argument "Frame_alloc.free: double free") (fun () ->
      Frame_alloc.free a f)

let test_foreign_frame () =
  let a = Frame_alloc.create ~first:10 ~count:2 in
  Alcotest.(check bool) "owns" true (Frame_alloc.owns a 11);
  Alcotest.(check bool) "does not own" false (Frame_alloc.owns a 9);
  Alcotest.check_raises "free foreign"
    (Invalid_argument "Frame_alloc.free: frame outside allocator range")
    (fun () -> Frame_alloc.free a 9)

let prop_unique_allocations =
  Helpers.qtest "allocations are unique and in range"
    QCheck2.Gen.(int_range 1 64)
    (fun n ->
      let a = Frame_alloc.create ~first:100 ~count:n in
      let frames = List.init n (fun _ -> Frame_alloc.alloc_exn a) in
      let sorted = List.sort_uniq compare frames in
      List.length sorted = n
      && List.for_all (fun f -> f >= 100 && f < 100 + n) frames
      && Frame_alloc.alloc a = None)

let prop_free_restores =
  Helpers.qtest "free/alloc conserves the pool"
    QCheck2.Gen.(list_size (int_range 1 50) bool)
    (fun ops ->
      let a = Frame_alloc.create ~first:0 ~count:8 in
      let held = ref [] in
      List.iter
        (fun alloc ->
          if alloc then (
            match Frame_alloc.alloc a with
            | Some f -> held := f :: !held
            | None -> ())
          else
            match !held with
            | f :: rest ->
                Frame_alloc.free a f;
                held := rest
            | [] -> ())
        ops;
      Frame_alloc.free_count a = 8 - List.length !held)

let suite =
  [
    Alcotest.test_case "alloc and free" `Quick test_basic;
    Alcotest.test_case "exhaustion" `Quick test_exhaustion;
    Alcotest.test_case "double free rejected" `Quick test_double_free;
    Alcotest.test_case "foreign frames rejected" `Quick test_foreign_frame;
    prop_unique_allocations;
    prop_free_restores;
  ]
