open Nkhw

let test_constants () =
  Alcotest.(check int) "page size" 4096 Addr.page_size;
  Alcotest.(check int) "entries per table" 512 Addr.entries_per_table;
  Alcotest.(check int) "kernbase pml4 slot" 256 (Addr.pml4_index Addr.kernbase)

let test_frame_pa () =
  Alcotest.(check int) "frame of pa" 3 (Addr.frame_of_pa 0x3fff);
  Alcotest.(check int) "pa of frame" 0x3000 (Addr.pa_of_frame 3);
  Alcotest.(check int) "offset" 0xfff (Addr.page_offset 0x3fff)

let test_kva () =
  Alcotest.(check int) "kva of frame 0" Addr.kernbase (Addr.kva_of_frame 0);
  Alcotest.(check bool) "kernel va" true (Addr.is_kernel_va Addr.kernbase);
  Alcotest.(check bool) "user va" false (Addr.is_kernel_va 0x1000)

let test_indices () =
  let va = Addr.make_va ~pml4:256 ~pdpt:1 ~pd:2 ~pt:3 ~offset:42 in
  Alcotest.(check int) "pml4" 256 (Addr.pml4_index va);
  Alcotest.(check int) "pdpt" 1 (Addr.pdpt_index va);
  Alcotest.(check int) "pd" 2 (Addr.pd_index va);
  Alcotest.(check int) "pt" 3 (Addr.pt_index va);
  Alcotest.(check int) "offset" 42 (Addr.page_offset va)

let test_index_at_level () =
  let va = Addr.make_va ~pml4:7 ~pdpt:6 ~pd:5 ~pt:4 ~offset:0 in
  List.iter
    (fun (level, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "level %d" level)
        expected
        (Addr.index_at_level ~level va))
    [ (4, 7); (3, 6); (2, 5); (1, 4) ];
  Alcotest.check_raises "level 0 rejected"
    (Invalid_argument "Addr.index_at_level: level must be in 1..4") (fun () ->
      ignore (Addr.index_at_level ~level:0 va))

let test_alignment () =
  Alcotest.(check int) "align down" 0x1000 (Addr.align_down 0x1fff);
  Alcotest.(check int) "align up" 0x2000 (Addr.align_up 0x1001);
  Alcotest.(check int) "align up exact" 0x1000 (Addr.align_up 0x1000);
  Alcotest.(check bool) "aligned" true (Addr.is_page_aligned 0x2000);
  Alcotest.(check bool) "unaligned" false (Addr.is_page_aligned 0x2001)

let test_make_va_bounds () =
  Alcotest.check_raises "index out of range"
    (Invalid_argument "Addr.make_va: component out of range") (fun () ->
      ignore (Addr.make_va ~pml4:512 ~pdpt:0 ~pd:0 ~pt:0 ~offset:0))

let prop_roundtrip =
  let gen =
    QCheck2.Gen.(
      quad (int_range 0 511) (int_range 0 511) (int_range 0 511)
        (int_range 0 511))
  in
  Helpers.qtest "make_va/index round trip" gen (fun (a, b, c, d) ->
      let va = Addr.make_va ~pml4:a ~pdpt:b ~pd:c ~pt:d ~offset:0 in
      Addr.pml4_index va = a
      && Addr.pdpt_index va = b
      && Addr.pd_index va = c
      && Addr.pt_index va = d)

let prop_align =
  Helpers.qtest "align_down <= va < align_down + page"
    QCheck2.Gen.(int_range 0 max_int)
    (fun va ->
      let d = Addr.align_down va in
      d <= va && va < d + Addr.page_size && Addr.is_page_aligned d)

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "frame/pa conversions" `Quick test_frame_pa;
    Alcotest.test_case "kernel direct map addresses" `Quick test_kva;
    Alcotest.test_case "va component extraction" `Quick test_indices;
    Alcotest.test_case "index_at_level" `Quick test_index_at_level;
    Alcotest.test_case "alignment" `Quick test_alignment;
    Alcotest.test_case "make_va bounds" `Quick test_make_va_bounds;
    prop_roundtrip;
    prop_align;
  ]
