open Nkhw

let test_empty () =
  Alcotest.(check bool) "empty not present" false (Pte.is_present Pte.empty)

let test_make_accessors () =
  let pte = Pte.make ~frame:1234 Pte.kernel_rw in
  Alcotest.(check int) "frame" 1234 (Pte.frame pte);
  Alcotest.(check bool) "present" true (Pte.is_present pte);
  Alcotest.(check bool) "writable" true (Pte.is_writable pte);
  Alcotest.(check bool) "not user" false (Pte.is_user pte);
  Alcotest.(check bool) "executable" false (Pte.is_nx pte)

let test_flag_presets () =
  Alcotest.(check bool) "kernel_ro not writable" false
    (Pte.is_writable (Pte.make ~frame:1 Pte.kernel_ro));
  Alcotest.(check bool) "kernel_ro_nx nx" true
    (Pte.is_nx (Pte.make ~frame:1 Pte.kernel_ro_nx));
  Alcotest.(check bool) "user_rw_nx user" true
    (Pte.is_user (Pte.make ~frame:1 Pte.user_rw_nx));
  Alcotest.(check bool) "user_rx executable" false
    (Pte.is_nx (Pte.make ~frame:1 Pte.user_rx))

let test_setters () =
  let pte = Pte.make ~frame:7 Pte.kernel_rw in
  let ro = Pte.set_writable pte false in
  Alcotest.(check bool) "downgraded" false (Pte.is_writable ro);
  Alcotest.(check int) "frame preserved" 7 (Pte.frame ro);
  let nx = Pte.set_nx ro true in
  Alcotest.(check bool) "nx set" true (Pte.is_nx nx);
  let gone = Pte.set_present nx false in
  Alcotest.(check bool) "cleared" false (Pte.is_present gone)

let test_accessed_dirty () =
  let pte = Pte.make ~frame:7 Pte.kernel_rw in
  let pte = Pte.set_dirty (Pte.set_accessed pte) in
  Alcotest.(check bool) "accessed" true (Pte.flags pte).Pte.accessed;
  Alcotest.(check bool) "dirty" true (Pte.flags pte).Pte.dirty

let gen_flags =
  QCheck2.Gen.(
    let* present = bool in
    let* writable = bool in
    let* user = bool in
    let* accessed = bool in
    let* dirty = bool in
    let* large = bool in
    let* global = bool in
    let* nx = bool in
    return
      {
        Pte.present;
        writable;
        user;
        accessed;
        dirty;
        large;
        global;
        nx;
      })

let prop_roundtrip =
  Helpers.qtest "make/flags/frame round trip"
    QCheck2.Gen.(pair (int_range 0 0xFFFFFF) gen_flags)
    (fun (frame, flags) ->
      let pte = Pte.make ~frame flags in
      Pte.frame pte = frame && Pte.flags pte = flags)

let prop_with_flags =
  Helpers.qtest "with_flags replaces only flags"
    QCheck2.Gen.(triple (int_range 0 0xFFFFFF) gen_flags gen_flags)
    (fun (frame, f1, f2) ->
      let pte = Pte.make ~frame f1 in
      let pte' = Pte.with_flags pte f2 in
      Pte.frame pte' = frame && Pte.flags pte' = f2)

let suite =
  [
    Alcotest.test_case "empty entry" `Quick test_empty;
    Alcotest.test_case "make and accessors" `Quick test_make_accessors;
    Alcotest.test_case "flag presets" `Quick test_flag_presets;
    Alcotest.test_case "setters" `Quick test_setters;
    Alcotest.test_case "accessed/dirty" `Quick test_accessed_dirty;
    prop_roundtrip;
    prop_with_flags;
  ]
