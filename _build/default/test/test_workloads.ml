open Outer_kernel
open Nk_workloads

(* Shape tests: the reproduction's job is to match who wins and by
   roughly what factor, so the assertions are tolerance bands around
   the paper's reported values. *)

let within name ~tolerance expected actual =
  if abs_float (actual -. expected) > tolerance then
    Alcotest.failf "%s: expected %.3f +/- %.3f, got %.3f" name expected
      tolerance actual

let test_table3 () =
  let r = Boundary.run ~iterations:5000 () in
  within "nk call us" ~tolerance:0.005 Boundary.paper.Boundary.nk_call_us
    r.Boundary.nk_call_us;
  within "syscall us" ~tolerance:0.005 Boundary.paper.Boundary.syscall_us
    r.Boundary.syscall_us;
  within "vmcall us" ~tolerance:0.01 Boundary.paper.Boundary.vmcall_us
    r.Boundary.vmcall_us;
  within "vmcall/nk ratio" ~tolerance:0.2 3.69
    (r.Boundary.vmcall_us /. r.Boundary.nk_call_us)

let find_bench name =
  List.find (fun (b : Lmbench.bench) -> b.Lmbench.name = name) Lmbench.benches

let rel config bench_name =
  let b = find_bench bench_name in
  let native = Lmbench.measure ~iterations:20 Config.Native ~batched:false b in
  let sys = Lmbench.measure ~iterations:20 config ~batched:false b in
  sys /. native

let test_figure4_mmap_fork_heavy () =
  let mmap = rel Config.Perspicuos "mmap" in
  Alcotest.(check bool)
    (Printf.sprintf "mmap in the paper's 2.5-3x band (got %.2f)" mmap)
    true
    (mmap > 2.2 && mmap < 3.3);
  let fork = rel Config.Perspicuos "fork + exit" in
  Alcotest.(check bool)
    (Printf.sprintf "fork+exit in band (got %.2f)" fork)
    true
    (fork > 2.1 && fork < 3.2)

let test_figure4_cheap_paths () =
  let null = rel Config.Perspicuos "null syscall" in
  Alcotest.(check bool)
    (Printf.sprintf "null syscall near 1x (got %.2f)" null)
    true (null < 1.15);
  let sig_install = rel Config.Perspicuos "signal handler install" in
  Alcotest.(check bool) "signal install near 1x" true (sig_install < 1.15)

let test_figure4_append_only_null_worst () =
  let base = rel Config.Perspicuos "null syscall" in
  let append = rel Config.Append_only "null syscall" in
  Alcotest.(check bool)
    (Printf.sprintf "append-only null syscall is its worst case (%.2f)" append)
    true
    (append > 2.5 && append > base +. 1.0)

let test_figure4_policy_configs_match_base () =
  (* Paper: write-once and write-log incur the same overheads as base
     PerspicuOS on the microbenchmarks. *)
  List.iter
    (fun bench_name ->
      let base = rel Config.Perspicuos bench_name in
      let wo = rel Config.Write_once bench_name in
      within (bench_name ^ ": write-once tracks base") ~tolerance:0.15 base wo)
    [ "null syscall"; "mmap" ]

let test_figure5_shape () =
  let points = Sshd.run ~transfers:3 () in
  let rel_at size =
    let p = List.find (fun p -> p.Sshd.size_kb = size) points in
    List.assoc Config.Perspicuos p.Sshd.relative
  in
  Alcotest.(check bool)
    (Printf.sprintf "1KB shows the worst reduction (%.2f)" (rel_at 1))
    true
    (rel_at 1 < 0.9);
  Alcotest.(check bool) "64KB within 5%" true (rel_at 64 > 0.95);
  Alcotest.(check bool) "16MB within 1%" true (rel_at 16384 > 0.99);
  Alcotest.(check bool) "monotone recovery with size" true
    (rel_at 1 <= rel_at 16 && rel_at 16 <= rel_at 1024)

let test_figure6_negligible () =
  let points = Apache.run ~requests:24 () in
  List.iter
    (fun p ->
      List.iter
        (fun (c, r) ->
          if r < 0.98 then
            Alcotest.failf "apache %s at %dKB dropped to %.3f" (Config.name c)
              p.Apache.size_kb r)
        p.Apache.relative)
    points

let test_table4_band () =
  let results = Kbuild.run ~units:8 () in
  let overhead c =
    (List.find (fun r -> r.Kbuild.config = c) results).Kbuild.overhead_pct
  in
  Alcotest.(check bool)
    (Printf.sprintf "perspicuos near 2.6%% (got %.2f)" (overhead Config.Perspicuos))
    true
    (overhead Config.Perspicuos > 1.5 && overhead Config.Perspicuos < 4.5);
  Alcotest.(check bool) "append-only slightly higher" true
    (overhead Config.Append_only > overhead Config.Perspicuos)

let test_batching_ablation () =
  List.iter
    (fun bench_name ->
      let b = find_bench bench_name in
      let native = Lmbench.measure ~iterations:20 Config.Native ~batched:false b in
      let un = Lmbench.measure ~iterations:20 Config.Perspicuos ~batched:false b in
      let ba = Lmbench.measure ~iterations:20 Config.Perspicuos ~batched:true b in
      let cut = (un -. ba) /. (un -. native) *. 100. in
      Alcotest.(check bool)
        (Printf.sprintf "%s overhead cut >60%% (got %.0f%%)" bench_name cut)
        true (cut > 60.))
    [ "mmap"; "fork + exit" ]

let test_scanner_experiment_counts () =
  let program = Binary_gen.paper_kernel () in
  let s =
    Nested_kernel.Scanner.summarize
      (Nested_kernel.Scanner.scan (Nkhw.Insn.assemble program))
  in
  Alcotest.(check int) "2 implicit cr0" 2 s.Nested_kernel.Scanner.implicit_cr0;
  Alcotest.(check int) "38 implicit wrmsr" 38
    s.Nested_kernel.Scanner.implicit_wrmsr;
  Alcotest.(check int) "0 explicit" 0 s.Nested_kernel.Scanner.explicit_count

let test_boundary_determinism () =
  let a = Boundary.run ~iterations:2000 () in
  let b = Boundary.run ~iterations:2000 () in
  Alcotest.(check bool) "simulated clock is deterministic" true
    (a.Boundary.nk_call_us = b.Boundary.nk_call_us
    && a.Boundary.syscall_us = b.Boundary.syscall_us)

let suite =
  [
    Alcotest.test_case "Table 3 values" `Quick test_table3;
    Alcotest.test_case "Figure 4: vMMU-heavy band" `Slow
      test_figure4_mmap_fork_heavy;
    Alcotest.test_case "Figure 4: cheap paths near 1x" `Quick
      test_figure4_cheap_paths;
    Alcotest.test_case "Figure 4: append-only worst on null syscall" `Quick
      test_figure4_append_only_null_worst;
    Alcotest.test_case "Figure 4: policies track base" `Slow
      test_figure4_policy_configs_match_base;
    Alcotest.test_case "Figure 5 shape" `Slow test_figure5_shape;
    Alcotest.test_case "Figure 6 negligible" `Slow test_figure6_negligible;
    Alcotest.test_case "Table 4 band" `Slow test_table4_band;
    Alcotest.test_case "Section 5.4 batching ablation" `Slow
      test_batching_ablation;
    Alcotest.test_case "Section 5.2 scan counts" `Quick
      test_scanner_experiment_counts;
    Alcotest.test_case "deterministic measurements" `Quick
      test_boundary_determinism;
  ]
