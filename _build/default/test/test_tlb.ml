open Nkhw

let entry ?(writable = true) ?(global = false) frame =
  { Tlb.frame; writable; user = false; nx = false; global }

let test_miss_then_hit () =
  let tlb = Tlb.create () in
  Alcotest.(check (option reject)) "initial miss" None
    (Option.map ignore (Tlb.lookup tlb ~vpage:5));
  Tlb.insert tlb ~vpage:5 (entry 42);
  (match Tlb.lookup tlb ~vpage:5 with
  | Some e -> Alcotest.(check int) "hit frame" 42 e.Tlb.frame
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check int) "hits" 1 (Tlb.hits tlb)

let test_flush_page () =
  let tlb = Tlb.create () in
  Tlb.insert tlb ~vpage:1 (entry 10);
  Tlb.insert tlb ~vpage:2 (entry 20);
  Tlb.flush_page tlb ~vpage:1;
  Alcotest.(check bool) "flushed gone" true (Tlb.lookup tlb ~vpage:1 = None);
  Alcotest.(check bool) "other survives" true (Tlb.lookup tlb ~vpage:2 <> None)

let test_flush_all_keeps_global () =
  let tlb = Tlb.create () in
  Tlb.insert tlb ~vpage:1 (entry 10);
  Tlb.insert tlb ~vpage:2 (entry ~global:true 20);
  Tlb.flush_all tlb;
  Alcotest.(check bool) "non-global gone" true (Tlb.lookup tlb ~vpage:1 = None);
  Alcotest.(check bool) "global kept" true (Tlb.lookup tlb ~vpage:2 <> None)

let test_stale_entry_semantics () =
  (* The TLB intentionally serves whatever was inserted — staleness is
     the caller's problem, exactly as on hardware. *)
  let tlb = Tlb.create () in
  Tlb.insert tlb ~vpage:9 (entry ~writable:true 1);
  Tlb.insert tlb ~vpage:9 (entry ~writable:false 1);
  match Tlb.lookup tlb ~vpage:9 with
  | Some e -> Alcotest.(check bool) "latest wins" false e.Tlb.writable
  | None -> Alcotest.fail "entry missing"

let prop_insert_lookup =
  Helpers.qtest "insert/lookup"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 10_000))
    (fun (vpage, frame) ->
      let tlb = Tlb.create () in
      Tlb.insert tlb ~vpage (entry frame);
      match Tlb.lookup tlb ~vpage with
      | Some e -> e.Tlb.frame = frame
      | None -> false)

let suite =
  [
    Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
    Alcotest.test_case "flush page" `Quick test_flush_page;
    Alcotest.test_case "full flush keeps globals" `Quick test_flush_all_keeps_global;
    Alcotest.test_case "stale entries served" `Quick test_stale_entry_semantics;
    prop_insert_lookup;
  ]
