open Nkhw

let entry ?(writable = true) ?(global = false) frame =
  { Tlb.frame; writable; user = false; nx = false; global }

let test_miss_then_hit () =
  let tlb = Tlb.create () in
  Alcotest.(check (option reject)) "initial miss" None
    (Option.map ignore (Tlb.lookup tlb ~asid:0 ~vpage:5));
  Tlb.insert tlb ~asid:0 ~vpage:5 (entry 42);
  (match Tlb.lookup tlb ~asid:0 ~vpage:5 with
  | Some e -> Alcotest.(check int) "hit frame" 42 e.Tlb.frame
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check int) "hits" 1 (Tlb.hits tlb)

let test_flush_page () =
  let tlb = Tlb.create () in
  Tlb.insert tlb ~asid:0 ~vpage:1 (entry 10);
  Tlb.insert tlb ~asid:0 ~vpage:2 (entry 20);
  Tlb.flush_page tlb ~vpage:1;
  Alcotest.(check bool) "flushed gone" true
    (Tlb.lookup tlb ~asid:0 ~vpage:1 = None);
  Alcotest.(check bool) "other survives" true
    (Tlb.lookup tlb ~asid:0 ~vpage:2 <> None)

let test_flush_all_keeps_global () =
  let tlb = Tlb.create () in
  Tlb.insert tlb ~asid:0 ~vpage:1 (entry 10);
  Tlb.insert tlb ~asid:0 ~vpage:2 (entry ~global:true 20);
  Tlb.flush_all tlb;
  Alcotest.(check bool) "non-global gone" true
    (Tlb.lookup tlb ~asid:0 ~vpage:1 = None);
  Alcotest.(check bool) "global kept" true
    (Tlb.lookup tlb ~asid:0 ~vpage:2 <> None)

let test_stale_entry_semantics () =
  (* The TLB intentionally serves whatever was inserted — staleness is
     the caller's problem, exactly as on hardware. *)
  let tlb = Tlb.create () in
  Tlb.insert tlb ~asid:0 ~vpage:9 (entry ~writable:true 1);
  Tlb.insert tlb ~asid:0 ~vpage:9 (entry ~writable:false 1);
  match Tlb.lookup tlb ~asid:0 ~vpage:9 with
  | Some e -> Alcotest.(check bool) "latest wins" false e.Tlb.writable
  | None -> Alcotest.fail "entry missing"

let test_asid_isolation () =
  let tlb = Tlb.create () in
  Tlb.insert tlb ~asid:1 ~vpage:5 (entry 11);
  Tlb.insert tlb ~asid:2 ~vpage:5 (entry 22);
  (match Tlb.lookup tlb ~asid:1 ~vpage:5 with
  | Some e -> Alcotest.(check int) "asid 1 frame" 11 e.Tlb.frame
  | None -> Alcotest.fail "asid 1 miss");
  (match Tlb.lookup tlb ~asid:2 ~vpage:5 with
  | Some e -> Alcotest.(check int) "asid 2 frame" 22 e.Tlb.frame
  | None -> Alcotest.fail "asid 2 miss");
  Alcotest.(check bool) "asid 3 misses" true
    (Tlb.lookup tlb ~asid:3 ~vpage:5 = None)

let test_global_visible_in_all_asids () =
  let tlb = Tlb.create () in
  Tlb.insert tlb ~asid:1 ~vpage:7 (entry ~global:true 70);
  Alcotest.(check bool) "asid 2 sees global" true
    (Tlb.lookup tlb ~asid:2 ~vpage:7 <> None);
  Alcotest.(check bool) "asid 0 sees global" true
    (Tlb.lookup tlb ~asid:0 ~vpage:7 <> None)

let test_flush_asid () =
  let tlb = Tlb.create () in
  Tlb.insert tlb ~asid:1 ~vpage:1 (entry 10);
  Tlb.insert tlb ~asid:2 ~vpage:1 (entry 20);
  Tlb.insert tlb ~asid:1 ~vpage:3 (entry ~global:true 30);
  Tlb.flush_asid tlb ~asid:1;
  Alcotest.(check bool) "asid 1 flushed" true
    (Tlb.lookup tlb ~asid:1 ~vpage:1 = None);
  Alcotest.(check bool) "asid 2 untouched" true
    (Tlb.lookup tlb ~asid:2 ~vpage:1 <> None);
  Alcotest.(check bool) "global untouched" true
    (Tlb.lookup tlb ~asid:1 ~vpage:3 <> None)

let test_flush_all_covers_every_asid () =
  let tlb = Tlb.create () in
  Tlb.insert tlb ~asid:1 ~vpage:1 (entry 10);
  Tlb.insert tlb ~asid:2 ~vpage:2 (entry 20);
  Tlb.flush_all tlb;
  Alcotest.(check bool) "asid 1 gone" true
    (Tlb.lookup tlb ~asid:1 ~vpage:1 = None);
  Alcotest.(check bool) "asid 2 gone" true
    (Tlb.lookup tlb ~asid:2 ~vpage:2 = None)

let test_flush_global_too () =
  let tlb = Tlb.create () in
  Tlb.insert tlb ~asid:1 ~vpage:1 (entry 10);
  Tlb.insert tlb ~asid:1 ~vpage:2 (entry ~global:true 20);
  Tlb.flush_global_too tlb;
  Alcotest.(check bool) "non-global gone" true
    (Tlb.lookup tlb ~asid:1 ~vpage:1 = None);
  Alcotest.(check bool) "global gone too" true
    (Tlb.lookup tlb ~asid:1 ~vpage:2 = None)

let test_flush_page_all_asids () =
  let tlb = Tlb.create () in
  Tlb.insert tlb ~asid:1 ~vpage:4 (entry 10);
  Tlb.insert tlb ~asid:2 ~vpage:4 (entry 20);
  Tlb.insert tlb ~asid:3 ~vpage:4 (entry ~global:true 30);
  Tlb.insert tlb ~asid:1 ~vpage:5 (entry 50);
  Tlb.flush_page tlb ~vpage:4;
  Alcotest.(check bool) "asid 1 gone" true
    (Tlb.lookup tlb ~asid:1 ~vpage:4 = None);
  Alcotest.(check bool) "asid 2 gone" true
    (Tlb.lookup tlb ~asid:2 ~vpage:4 = None);
  Alcotest.(check bool) "global gone" true
    (Tlb.lookup tlb ~asid:3 ~vpage:4 = None);
  Alcotest.(check bool) "other page survives" true
    (Tlb.lookup tlb ~asid:1 ~vpage:5 <> None)

let test_size_counts_live_entries () =
  let tlb = Tlb.create () in
  Tlb.insert tlb ~asid:1 ~vpage:1 (entry 10);
  Tlb.insert tlb ~asid:2 ~vpage:1 (entry 20);
  Tlb.insert tlb ~asid:1 ~vpage:2 (entry ~global:true 30);
  Alcotest.(check int) "3 live" 3 (Tlb.size tlb);
  Tlb.flush_asid tlb ~asid:1;
  Alcotest.(check int) "asid 1 dropped" 2 (Tlb.size tlb);
  Tlb.flush_all tlb;
  Alcotest.(check int) "globals only" 1 (Tlb.size tlb);
  Tlb.flush_global_too tlb;
  Alcotest.(check int) "empty" 0 (Tlb.size tlb)

let test_refill_after_generation_flush () =
  (* The generation trick must not resurrect or shadow entries:
     insert, flush, re-insert must serve the new entry. *)
  let tlb = Tlb.create () in
  Tlb.insert tlb ~asid:1 ~vpage:8 (entry 80);
  Tlb.flush_all tlb;
  Alcotest.(check bool) "stale invisible" true
    (Tlb.lookup tlb ~asid:1 ~vpage:8 = None);
  Tlb.insert tlb ~asid:1 ~vpage:8 (entry 81);
  (match Tlb.lookup tlb ~asid:1 ~vpage:8 with
  | Some e -> Alcotest.(check int) "fresh frame" 81 e.Tlb.frame
  | None -> Alcotest.fail "refill lost");
  Tlb.flush_asid tlb ~asid:1;
  Tlb.insert tlb ~asid:1 ~vpage:8 (entry 82);
  match Tlb.lookup tlb ~asid:1 ~vpage:8 with
  | Some e -> Alcotest.(check int) "post-asid-flush frame" 82 e.Tlb.frame
  | None -> Alcotest.fail "refill after asid flush lost"

let test_many_flushes_stay_cheap () =
  (* 100k flush_all calls with a populated table: feasible only if the
     flush is O(1).  Completes instantly with the generation scheme,
     would take noticeable time rebuilding a hashtable per call. *)
  let tlb = Tlb.create () in
  for vpage = 0 to 255 do
    Tlb.insert tlb ~asid:(vpage land 7) ~vpage (entry vpage)
  done;
  for _ = 1 to 100_000 do
    Tlb.flush_all tlb
  done;
  Alcotest.(check int) "all dead" 0 (Tlb.size tlb)

let prop_insert_lookup =
  Helpers.qtest "insert/lookup"
    QCheck2.Gen.(
      triple (int_range 0 1_000_000) (int_range 0 10_000) (int_range 0 4095))
    (fun (vpage, frame, asid) ->
      let tlb = Tlb.create () in
      Tlb.insert tlb ~asid ~vpage (entry frame);
      match Tlb.lookup tlb ~asid ~vpage with
      | Some e -> e.Tlb.frame = frame
      | None -> false)

let prop_asid_flush_isolated =
  Helpers.qtest "flush_asid leaves other asids intact"
    QCheck2.Gen.(
      triple (int_range 0 1_000_000) (int_range 1 4095) (int_range 1 4095))
    (fun (vpage, a, b) ->
      QCheck2.assume (a <> b);
      let tlb = Tlb.create () in
      Tlb.insert tlb ~asid:a ~vpage (entry 1);
      Tlb.insert tlb ~asid:b ~vpage (entry 2);
      Tlb.flush_asid tlb ~asid:a;
      Tlb.lookup tlb ~asid:a ~vpage = None
      && Tlb.lookup tlb ~asid:b ~vpage <> None)

let suite =
  [
    Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
    Alcotest.test_case "flush page" `Quick test_flush_page;
    Alcotest.test_case "full flush keeps globals" `Quick test_flush_all_keeps_global;
    Alcotest.test_case "stale entries served" `Quick test_stale_entry_semantics;
    Alcotest.test_case "asid isolation" `Quick test_asid_isolation;
    Alcotest.test_case "globals visible in all asids" `Quick
      test_global_visible_in_all_asids;
    Alcotest.test_case "flush asid" `Quick test_flush_asid;
    Alcotest.test_case "full flush covers every asid" `Quick
      test_flush_all_covers_every_asid;
    Alcotest.test_case "flush global too" `Quick test_flush_global_too;
    Alcotest.test_case "flush page hits all asids" `Quick
      test_flush_page_all_asids;
    Alcotest.test_case "size counts live entries" `Quick
      test_size_counts_live_entries;
    Alcotest.test_case "refill after generation flush" `Quick
      test_refill_after_generation_flush;
    Alcotest.test_case "100k flushes stay cheap" `Quick
      test_many_flushes_stay_cheap;
    prop_insert_lookup;
    prop_asid_flush_isolated;
  ]
