open Nkhw
open Outer_kernel

let setup () =
  let k = Helpers.kernel Config.Native in
  (k.Kernel.machine, k.Kernel.allproc)

let test_boot_has_init () =
  let _, pl = setup () in
  Alcotest.(check (list (pair int int))) "init present" [ (1, 0) ]
    (Proclist.pids pl)

let test_insert_order () =
  let _, pl = setup () in
  ignore (Result.get_ok (Proclist.insert pl 2));
  ignore (Result.get_ok (Proclist.insert pl 3));
  Alcotest.(check (list int)) "head insertion order" [ 3; 2; 1 ]
    (List.map fst (Proclist.pids pl))

let test_find () =
  let _, pl = setup () in
  let node = Result.get_ok (Proclist.insert pl 7) in
  Alcotest.(check (option int)) "find" (Some node) (Proclist.find pl 7);
  Alcotest.(check (option int)) "missing" None (Proclist.find pl 99)

let test_set_state () =
  let _, pl = setup () in
  let node = Result.get_ok (Proclist.insert pl 7) in
  ignore (Proclist.set_state pl ~node 1);
  Alcotest.(check (option int)) "state visible" (Some 1)
    (List.assoc_opt 7 (Proclist.pids pl))

let test_remove_middle () =
  let _, pl = setup () in
  ignore (Result.get_ok (Proclist.insert pl 2));
  let n3 = Result.get_ok (Proclist.insert pl 3) in
  ignore (Result.get_ok (Proclist.insert pl 4));
  ignore n3;
  let node2 = Option.get (Proclist.find pl 2) in
  Helpers.check_ok "remove" (Proclist.remove pl ~node:node2);
  Alcotest.(check (list int)) "2 gone, links intact" [ 4; 3; 1 ]
    (List.map fst (Proclist.pids pl))

let test_remove_head () =
  let _, pl = setup () in
  ignore (Result.get_ok (Proclist.insert pl 2));
  let head = Option.get (Proclist.find pl 2) in
  Helpers.check_ok "remove head" (Proclist.remove pl ~node:head);
  Alcotest.(check (list int)) "1 remains" [ 1 ] (List.map fst (Proclist.pids pl))

let test_unlink_raw_is_dkom () =
  (* The rootkit primitive: after unlink_raw the walker misses the
     process but the node's memory still holds its pid. *)
  let m, pl = setup () in
  ignore (Result.get_ok (Proclist.insert pl 66));
  let node = Option.get (Proclist.find pl 66) in
  Helpers.check_ok "unlink"
    (Proclist.unlink_raw m ~head_va:(Proclist.head_va pl) ~node);
  Alcotest.(check (option int)) "hidden" None (Proclist.find pl 66);
  Alcotest.(check int) "node memory still holds the pid" 66
    (Result.get_ok (Machine.kread_u64 m node))

let prop_insert_remove_random =
  Helpers.qtest ~count:40 "random insert/remove keeps the list consistent"
    QCheck2.Gen.(list_size (int_range 1 30) (int_range 2 20))
    (fun pids ->
      let _, pl = setup () in
      let live = Hashtbl.create 8 in
      Hashtbl.replace live 1 ();
      List.for_all
        (fun pid ->
          (if Hashtbl.mem live pid then begin
             (match Proclist.find pl pid with
             | Some node -> ignore (Proclist.remove pl ~node)
             | None -> ());
             Hashtbl.remove live pid
           end
           else begin
             ignore (Proclist.insert pl pid);
             Hashtbl.replace live pid ()
           end);
          let walked = List.sort compare (List.map fst (Proclist.pids pl)) in
          let expected =
            List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) live [])
          in
          walked = expected)
        pids)

let suite =
  [
    Alcotest.test_case "boot has init" `Quick test_boot_has_init;
    Alcotest.test_case "insert order" `Quick test_insert_order;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "set state" `Quick test_set_state;
    Alcotest.test_case "remove middle" `Quick test_remove_middle;
    Alcotest.test_case "remove head" `Quick test_remove_head;
    Alcotest.test_case "unlink_raw hides but leaves bytes" `Quick
      test_unlink_raw_is_dkom;
    prop_insert_remove_random;
  ]
