open Nested_kernel

let b = Bytes.of_string

let test_append_and_order () =
  let log = Nklog.create () in
  Nklog.append log ~offset:0 ~old:(b "xx") ~data:(b "ab");
  Nklog.append log ~offset:2 ~old:(b "yy") ~data:(b "cd");
  Alcotest.(check int) "length" 2 (Nklog.length log);
  match Nklog.records log with
  | [ r0; r1 ] ->
      Alcotest.(check int) "seq order" 0 r0.Nklog.seq;
      Alcotest.(check int) "seq order" 1 r1.Nklog.seq
  | _ -> Alcotest.fail "expected two records"

let test_replay () =
  let log = Nklog.create () in
  Nklog.append log ~offset:0 ~old:(b "....") ~data:(b "abcd");
  Nklog.append log ~offset:2 ~old:(b "cd") ~data:(b "ZW");
  let initial = Bytes.of_string "...." in
  Alcotest.(check string) "replay none" "...."
    (Bytes.to_string (Nklog.replay log ~initial ~upto:0));
  Alcotest.(check string) "replay one" "abcd"
    (Bytes.to_string (Nklog.replay log ~initial ~upto:1));
  Alcotest.(check string) "replay all" "abZW"
    (Bytes.to_string (Nklog.replay log ~initial ~upto:2))

let test_writes_touching () =
  let log = Nklog.create () in
  Nklog.append log ~offset:0 ~old:(b "..") ~data:(b "aa");
  Nklog.append log ~offset:10 ~old:(b "..") ~data:(b "bb");
  Alcotest.(check int) "range hit" 1
    (List.length (Nklog.writes_touching log ~offset:9 ~len:2));
  Alcotest.(check int) "range miss" 0
    (List.length (Nklog.writes_touching log ~offset:4 ~len:4))

let prop_replay_equals_sequential =
  Helpers.qtest "replay equals sequential application"
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (pair (int_range 0 28) (string_size ~gen:printable (int_range 1 4))))
    (fun writes ->
      let log = Nklog.create () in
      let shadow = Bytes.make 32 '.' in
      List.iter
        (fun (offset, s) ->
          let data = Bytes.of_string s in
          let old = Bytes.sub shadow offset (Bytes.length data) in
          Nklog.append log ~offset ~old ~data;
          Bytes.blit data 0 shadow offset (Bytes.length data))
        writes;
      Bytes.equal
        (Nklog.replay log ~initial:(Bytes.make 32 '.') ~upto:(Nklog.length log))
        shadow)

let suite =
  [
    Alcotest.test_case "append and order" `Quick test_append_and_order;
    Alcotest.test_case "replay prefixes" `Quick test_replay;
    Alcotest.test_case "writes_touching" `Quick test_writes_touching;
    prop_replay_equals_sequential;
  ]
