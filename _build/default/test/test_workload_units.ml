open Outer_kernel
open Nk_workloads

(* Unit-level coverage of the workload machinery itself: generator
   determinism, statistics helpers, configuration parsing, table
   rendering. *)

let test_config_names () =
  List.iter
    (fun c ->
      match Config.of_name (Config.name c) with
      | Some c' -> Alcotest.(check string) "roundtrip" (Config.name c) (Config.name c')
      | None -> Alcotest.failf "name %s did not parse" (Config.name c))
    Config.all;
  Alcotest.(check bool) "unknown rejected" true (Config.of_name "windows" = None);
  Alcotest.(check bool) "case insensitive" true
    (Config.of_name "NATIVE" = Some Config.Native);
  Alcotest.(check bool) "native not nested" false (Config.is_nested Config.Native);
  Alcotest.(check int) "five systems" 5 (List.length Config.all)

let test_stats_helpers () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "stddev" 1.0 (Stats.stddev [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "stddev singleton" 0.0 (Stats.stddev [ 5. ]);
  Alcotest.(check (float 1e-9)) "overhead" 10.0
    (Stats.pct_overhead ~native:100. ~sys:110.);
  Alcotest.(check (float 1e-9)) "relative" 1.1
    (Stats.relative ~native:100. ~sys:110.)

let test_table_render () =
  let t =
    {
      Stats.title = "t";
      columns = [ "a"; "b" ];
      rows = [ [ "x"; "1" ]; [ "longer"; "22" ] ];
      notes = [ "n" ];
    }
  in
  let out = Format.asprintf "%a" Stats.render t in
  Alcotest.(check bool) "title present" true
    (Astring_contains.contains out "== t ==");
  Alcotest.(check bool) "note present" true (Astring_contains.contains out "note: n")

let test_bar_chart_render () =
  let out =
    Format.asprintf "%t" (fun ppf ->
        Stats.bar_chart ~title:"c" ~max_value:2.0 [ ("x", 1.0); ("y", 2.0) ] ppf)
  in
  Alcotest.(check bool) "has bars" true (Astring_contains.contains out "#");
  Alcotest.(check bool) "has values" true (Astring_contains.contains out "2.00")

let test_binary_gen_deterministic () =
  let a = Binary_gen.generate ~seed:7 ~benign_blocks:50 ~implicit_cr0:1 ~implicit_wrmsr:4 () in
  let b = Binary_gen.generate ~seed:7 ~benign_blocks:50 ~implicit_cr0:1 ~implicit_wrmsr:4 () in
  Alcotest.(check bool) "same seed, same binary" true
    (Bytes.equal (Nkhw.Insn.assemble a) (Nkhw.Insn.assemble b));
  let c = Binary_gen.generate ~seed:8 ~benign_blocks:50 ~implicit_cr0:1 ~implicit_wrmsr:4 () in
  Alcotest.(check bool) "different seed, different binary" false
    (Bytes.equal (Nkhw.Insn.assemble a) (Nkhw.Insn.assemble c))

let test_binary_gen_zero_seeds () =
  let p = Binary_gen.generate ~benign_blocks:80 ~implicit_cr0:0 ~implicit_wrmsr:0 () in
  Alcotest.(check bool) "benign program is pattern-free" true
    (Nested_kernel.Scanner.is_clean (Nkhw.Insn.assemble p))

let test_sample_outputs_stable () =
  let p = Binary_gen.paper_kernel () in
  Alcotest.(check bool) "pure function" true
    (Binary_gen.sample_outputs p = Binary_gen.sample_outputs p)

let test_boundary_table_shape () =
  let r = Boundary.run ~iterations:500 () in
  let t = Boundary.to_table r in
  Alcotest.(check int) "three boundaries" 3 (List.length t.Stats.rows);
  Alcotest.(check int) "five columns" 5 (List.length t.Stats.columns)

let test_lmbench_bench_names () =
  Alcotest.(check (list string)) "the paper's eight benchmarks"
    [
      "null syscall";
      "open/close";
      "mmap";
      "page fault";
      "signal handler install";
      "signal handler delivery";
      "fork + exit";
      "fork + exec";
    ]
    (List.map (fun (b : Lmbench.bench) -> b.Lmbench.name) Lmbench.benches)

let test_sshd_sizes_match_figure () =
  Alcotest.(check (list int)) "figure 5 x-axis"
    [ 1; 4; 16; 64; 256; 1024; 4096; 16384 ]
    Sshd.sizes_kb

let test_apache_sizes_match_figure () =
  Alcotest.(check int) "figure 6 reaches 1 GB" 1048576
    (List.nth Apache.sizes_kb (List.length Apache.sizes_kb - 1))

let suite =
  [
    Alcotest.test_case "config names" `Quick test_config_names;
    Alcotest.test_case "stats helpers" `Quick test_stats_helpers;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "bar chart rendering" `Quick test_bar_chart_render;
    Alcotest.test_case "binary generator deterministic" `Quick
      test_binary_gen_deterministic;
    Alcotest.test_case "benign binaries are clean" `Quick test_binary_gen_zero_seeds;
    Alcotest.test_case "sample_outputs stable" `Quick test_sample_outputs_stable;
    Alcotest.test_case "boundary table shape" `Quick test_boundary_table_shape;
    Alcotest.test_case "lmbench covers figure 4" `Quick test_lmbench_bench_names;
    Alcotest.test_case "sshd covers figure 5" `Quick test_sshd_sizes_match_figure;
    Alcotest.test_case "apache covers figure 6" `Quick test_apache_sizes_match_figure;
  ]
