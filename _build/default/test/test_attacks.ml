open Outer_kernel

(* The full attack x configuration matrix, one test case per cell: the
   outcome of every attack must match the paper's defense story for
   that configuration (Nk_attacks.All.expected_defended). *)

let cell config (attack : Nk_attacks.Attack.t) () =
  let k = Helpers.kernel config in
  let outcome = attack.Nk_attacks.Attack.run k in
  let expected = Nk_attacks.All.expected_defended config attack.name in
  let actual = Nk_attacks.Attack.defended outcome in
  if actual <> expected then
    Alcotest.failf "%s on %s: expected %s, attack reports %s"
      attack.Nk_attacks.Attack.name (Config.name config)
      (if expected then "defended" else "successful")
      (Format.asprintf "%a" Nk_attacks.Attack.pp_outcome outcome)

let matrix =
  List.concat_map
    (fun config ->
      List.map
        (fun (a : Nk_attacks.Attack.t) ->
          Alcotest.test_case
            (Printf.sprintf "%s vs %s" a.Nk_attacks.Attack.name
               (Config.name config))
            `Quick (cell config a))
        Nk_attacks.All.attacks)
    Config.all

(* A few attack-specific depth checks beyond the binary verdict. *)

let test_machine_survives_blocked_attacks () =
  (* After every defended attack the nested kernel still audits clean
     and the kernel still works. *)
  List.iter
    (fun (a : Nk_attacks.Attack.t) ->
      let k = Helpers.kernel Config.Perspicuos in
      ignore (a.Nk_attacks.Attack.run k);
      let p = Kernel.current_proc k in
      (match Syscalls.getpid k p with
      | Ok 1 -> ()
      | _ -> Alcotest.failf "%s left the kernel broken" a.name);
      match k.Kernel.nk with
      | Some nk ->
          if not (Nested_kernel.Api.audit_ok nk) then
            Alcotest.failf "%s left invariant violations" a.name
      | None -> ())
    (List.filter
       (fun (a : Nk_attacks.Attack.t) ->
         (* The PG attack intentionally wedges a hypothetical CPU; the
            harness restores CR0, so it is included too. *)
         Nk_attacks.All.expected_defended Config.Perspicuos a.name)
       Nk_attacks.All.attacks)

let test_hook_then_detect_via_shadow () =
  (* Full rootkit story on the write-log system: hide a process, then
     run the forensic reconstruction and find it. *)
  let k = Helpers.kernel Config.Write_log in
  let p = Kernel.current_proc k in
  let pid = Result.get_ok (Syscalls.fork k p) in
  let node = Option.get (Proclist.find k.Kernel.allproc pid) in
  ignore
    (Proclist.unlink_raw k.Kernel.machine
       ~head_va:(Proclist.head_va k.Kernel.allproc)
       ~node);
  let shadow = Option.get k.Kernel.shadow in
  ignore (Shadow_proc.on_remove shadow pid);
  let suspicious =
    List.filter
      (fun (hidden_pid, _) -> not (List.mem hidden_pid k.Kernel.legit_exits))
      (Shadow_proc.removal_history shadow)
  in
  Alcotest.(check (list int)) "forensics names the hidden pid" [ pid ]
    (List.map fst suspicious)

let test_denied_writes_counted_under_attack () =
  let k = Helpers.kernel Config.Write_once in
  ignore (Nk_attacks.Rootkit.syscall_hook_via_legit_path.Nk_attacks.Attack.run k);
  match k.Kernel.nk with
  | Some nk ->
      Alcotest.(check bool) "mediation denial recorded" true
        (Nested_kernel.Api.denied_writes nk >= 1)
  | None -> Alcotest.fail "no nested kernel"

let suite =
  matrix
  @ [
      Alcotest.test_case "machine survives every blocked attack" `Slow
        test_machine_survives_blocked_attacks;
      Alcotest.test_case "forensic reconstruction end-to-end" `Quick
        test_hook_then_detect_via_shadow;
      Alcotest.test_case "denials counted" `Quick
        test_denied_writes_counted_under_attack;
    ]
