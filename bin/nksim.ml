(* nksim: command-line driver for the nested-kernel simulator.

     nksim boot    [-c CONFIG]          boot and report system state
     nksim attacks [-c CONFIG] [-a NAME] run the attack suite
     nksim audit   [-c CONFIG]          boot, stress, audit invariants
     nksim serve   [-c CONFIG] [--conns N] event-driven server under load
     nksim list                         list configurations and attacks *)

open Cmdliner
open Outer_kernel

let config_arg =
  let parse s =
    match Config.of_name s with
    | Some c -> Ok c
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown configuration %S (try: %s)" s
               (String.concat ", " (List.map Config.name Config.all))))
  in
  let print ppf c = Format.pp_print_string ppf (Config.name c) in
  Arg.conv (parse, print)

let config =
  Arg.(
    value
    & opt config_arg Config.Perspicuos
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:"System configuration: native, perspicuos, append-only, \
              write-once or write-log.")

let trace_arg =
  Arg.(
    value
    & opt
        ~vopt:(Some `Summary)
        (some (enum [ ("summary", `Summary); ("json", `Json) ]))
        None
    & info [ "trace" ] ~docv:"FORMAT"
        ~doc:"Enable the cycle-stamped tracer for the run and report it: \
              $(b,summary) (default) prints event counters and latency \
              histograms, $(b,json) dumps the full snapshot as JSON. \
              Tracing charges no simulated cycles.")

let print_trace fmt (m : Nkhw.Machine.t) =
  let snap = Nktrace.snapshot m.Nkhw.Machine.trace in
  match fmt with
  | `Json -> print_endline (Nktrace.to_json snap)
  | `Summary ->
      Printf.printf "  trace           : %d events in ring (%d overwritten)\n"
        (List.length snap.Nktrace.events)
        snap.Nktrace.dropped;
      if snap.Nktrace.counters <> [] then begin
        print_endline "  counters:";
        List.iter
          (fun (name, v) -> Printf.printf "    %-28s %d\n" name v)
          snap.Nktrace.counters
      end;
      if snap.Nktrace.histograms <> [] then begin
        print_endline "  latency histograms (cycles):";
        List.iter
          (fun (name, (h : Nktrace.hist_summary)) ->
            Printf.printf "    %-28s n=%-6d p50=%-6d p95=%-6d p99=%d\n" name
              h.Nktrace.h_count h.Nktrace.p50 h.Nktrace.p95 h.Nktrace.p99)
          snap.Nktrace.histograms
      end

(* --inject sites=frame+gate+ipi-drop,rate=0.01,seed=42 — any field
   may be omitted; [sites=all] is the default. *)
let inject_spec =
  let parse s =
    try
      let sites = ref Nkinject.all_sites in
      let rate = ref 0.01 and seed = ref 42 in
      List.iter
        (fun field ->
          if field <> "" then
            match String.index_opt field '=' with
            | None ->
                failwith (Printf.sprintf "bad field %S (want key=value)" field)
            | Some i ->
                let key = String.sub field 0 i in
                let v = String.sub field (i + 1) (String.length field - i - 1) in
                (match key with
                | "sites" ->
                    if v = "all" then sites := Nkinject.all_sites
                    else
                      sites :=
                        List.map
                          (fun n ->
                            match Nkinject.site_of_name n with
                            | Some site -> site
                            | None ->
                                failwith
                                  (Printf.sprintf
                                     "unknown site %S (try: %s or all)" n
                                     (String.concat ", "
                                        (List.map Nkinject.site_name
                                           Nkinject.all_sites))))
                          (String.split_on_char '+' v)
                | "rate" -> (
                    match float_of_string_opt v with
                    | Some r when r >= 0.0 && r <= 1.0 -> rate := r
                    | _ -> failwith (Printf.sprintf "bad rate %S" v))
                | "seed" -> (
                    match int_of_string_opt v with
                    | Some n -> seed := n
                    | None -> failwith (Printf.sprintf "bad seed %S" v))
                | k -> failwith (Printf.sprintf "unknown key %S" k)))
        (String.split_on_char ',' s);
      Ok (!sites, !rate, !seed)
    with Failure msg -> Error (`Msg msg)
  in
  let print ppf (sites, rate, seed) =
    Format.fprintf ppf "sites=%s,rate=%g,seed=%d"
      (String.concat "+" (List.map Nkinject.site_name sites))
      rate seed
  in
  Arg.conv (parse, print)

let inject_arg =
  Arg.(
    value
    & opt (some inject_spec) None
    & info [ "inject" ] ~docv:"SPEC"
        ~doc:"Attach the deterministic fault injector: \
              $(b,sites=frame+gate+ipi-drop,rate=0.01,seed=42).  Sites \
              are $(b,+)-separated injection-site names (or $(b,all)); \
              $(b,rate) is the per-site probability per decision point; \
              the same $(b,seed) reproduces the same fault schedule \
              exactly.  Injected counts and the invariant audit are \
              reported after the run.")

let cpus_arg =
  Arg.(
    value
    & opt int 1
    & info [ "cpus" ] ~docv:"N"
        ~doc:"Bring up $(docv) vCPUs (per-CPU kernel stacks, run queues \
              and gate state).")

let sched_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sched-seed" ] ~docv:"SEED"
        ~doc:"After boot, drive a short multi-process run under the \
              deterministic seeded executor and report per-CPU state. \
              The same seed reproduces the interleaving exactly.")

let smp_run k seed =
  let sched = Sched.create k in
  let p0 = Kernel.current_proc k in
  let cpus = Nkhw.Smp.cpu_count k.Kernel.smp in
  for _ = 1 to (2 * cpus) - 1 do
    match Syscalls.fork k p0 with
    | Ok pid -> Sched.add sched pid
    | Error _ -> ()
  done;
  let tick = ref 0 in
  let steps =
    Sched.run_smp sched
      ~policy:(Nkhw.Smp.Executor.Seeded seed)
      ~steps:(50 * cpus)
      (fun ~cpu:_ pid ->
        incr tick;
        (match Kernel.proc k pid with
        | None -> ()
        | Some p ->
            ignore (Syscalls.getpid k p);
            if !tick mod 4 = 0 then
              match Syscalls.mmap k p ~len:4096 ~rw:true ~populate:true () with
              | Ok va -> ignore (Syscalls.munmap k p va)
              | Error _ -> ());
        true)
  in
  Printf.printf "  sched seed      : %d (%d executor steps)\n" seed steps;
  for id = 0 to cpus - 1 do
    Printf.printf
      "  cpu%-2d           : running=%s queue=[%s] local-cycles=%d \
       shootdowns-rx=%d\n"
      id
      (match k.Kernel.running.(id) with
      | Some pid -> string_of_int pid
      | None -> "-")
      (String.concat ";" (List.map string_of_int (Sched.queue_of sched id)))
      (Nkhw.Smp.local_cycles k.Kernel.smp id)
      (Nkhw.Smp.shootdowns_rx k.Kernel.smp id)
  done;
  let counter ev =
    Nktrace.counter_value k.Kernel.machine.Nkhw.Machine.trace ev
  in
  Printf.printf
    "  shootdowns      : sent=%d filtered=%d coalesced=%d\n"
    (counter Nktrace.Shootdown_sent)
    (counter Nktrace.Shootdown_filtered)
    (counter Nktrace.Shootdown_coalesced);
  Printf.printf "  lazy flushes    : deferred=%d fired-on-reuse=%d\n"
    (counter Nktrace.Flush_deferred)
    (counter Nktrace.Flush_on_reuse)

(* Host-side wallclock and GC stats go to stderr: stdout is the
   deterministic report (CI diffs reruns byte-for-byte), and these
   numbers legitimately vary with the host. *)
let host_report ~host_secs ~cycles =
  let wallclock =
    if host_secs > 0. then float_of_int cycles /. host_secs else 0.
  in
  let g = Gc.quick_stat () in
  Printf.eprintf "  host wallclock  : %.0f sim cycles/host sec (%.3fs host)\n"
    wallclock host_secs;
  Printf.eprintf "  GC              : %.0f minor words, %d minor / %d major \
                  collections\n"
    g.Gc.minor_words g.Gc.minor_collections g.Gc.major_collections

let boot_cmd =
  let run config trace cpus sched_seed inject_spec =
    let host0 = Sys.time () in
    let inject =
      Option.map
        (fun (sites, rate, seed) -> Nkinject.create ~sites ~seed ~rate ())
        inject_spec
    in
    let k = Os.boot ~trace:(trace <> None) ~cpus ?inject config in
    let m = k.Kernel.machine in
    Printf.printf "booted %s\n" (Config.name config);
    Printf.printf "  vCPUs           : %d\n" cpus;
    Printf.printf "  physical frames : %d\n"
      (Nkhw.Phys_mem.num_frames m.Nkhw.Machine.mem);
    Printf.printf "  free outer pool : %d frames\n"
      (Nkhw.Frame_alloc.free_count k.Kernel.falloc);
    Printf.printf "  CR state        : %s\n"
      (Format.asprintf "%a" Nkhw.Cr.pp m.Nkhw.Machine.cr);
    Printf.printf "  boot cycles     : %d\n"
      (Nkhw.Clock.cycles m.Nkhw.Machine.clock);
    (match k.Kernel.nk with
    | Some nk ->
        Printf.printf "  nested kernel   : %d frames reserved, audit %s\n"
          (Nested_kernel.Api.outer_first_frame nk)
          (if Nested_kernel.Api.audit_ok nk then "clean" else "VIOLATIONS")
    | None -> Printf.printf "  nested kernel   : (none)\n");
    (match sched_seed with
    | Some seed -> smp_run k seed
    | None ->
        if cpus > 1 || inject <> None then
          smp_run k Nk_workloads.Smp_scale.default_seed);
    (match inject with
    | None -> ()
    | Some inj ->
        Printf.printf "  fault injection : seed=%d rate=%g — %d injected\n"
          (Nkinject.seed inj) (Nkinject.rate inj)
          (Nkinject.total_injected inj);
        List.iter
          (fun (site, n) ->
            if n > 0 then Printf.printf "    %-14s %d\n" site n)
          (Nkinject.counts inj);
        let audit_line =
          match k.Kernel.nk with
          | Some nk ->
              if Nested_kernel.Api.audit_ok nk then "invariants clean"
              else "INVARIANT VIOLATIONS"
          | None -> "no nested kernel"
        in
        Printf.printf "  post-fault audit: %s\n" audit_line);
    (match trace with None -> () | Some fmt -> print_trace fmt m);
    host_report ~host_secs:(Sys.time () -. host0)
      ~cycles:(Nkhw.Clock.cycles m.Nkhw.Machine.clock);
    0
  in
  Cmd.v (Cmd.info "boot" ~doc:"Boot a kernel and report system state")
    Term.(
      const run $ config $ trace_arg $ cpus_arg $ sched_seed_arg $ inject_arg)

let attack_name =
  Arg.(
    value
    & opt (some string) None
    & info [ "a"; "attack" ] ~docv:"NAME" ~doc:"Run a single attack by name.")

let attacks_cmd =
  let run config name =
    let selected =
      match name with
      | None -> Nk_attacks.All.attacks
      | Some n ->
          List.filter
            (fun (a : Nk_attacks.Attack.t) -> a.Nk_attacks.Attack.name = n)
            Nk_attacks.All.attacks
    in
    if selected = [] then begin
      Printf.eprintf "no such attack; try: nksim list\n";
      1
    end
    else begin
      let failures = ref 0 in
      List.iter
        (fun (a : Nk_attacks.Attack.t) ->
          let k = Os.boot config in
          let outcome = a.Nk_attacks.Attack.run k in
          let expected = Nk_attacks.All.expected_defended config a.name in
          if Nk_attacks.Attack.defended outcome <> expected then incr failures;
          Printf.printf "%-26s [%s] %s\n" a.Nk_attacks.Attack.name
            a.Nk_attacks.Attack.paper_ref
            (Format.asprintf "%a" Nk_attacks.Attack.pp_outcome outcome))
        selected;
      if !failures > 0 then begin
        Printf.printf "\n%d outcome(s) deviate from the paper's matrix\n"
          !failures;
        1
      end
      else 0
    end
  in
  Cmd.v
    (Cmd.info "attacks" ~doc:"Run the rootkit/exploit suite against a config")
    Term.(const run $ config $ attack_name)

let audit_cmd =
  let run config =
    let k = Os.boot config in
    let p = Kernel.current_proc k in
    (* Stress: process churn, mmap churn, module cycle. *)
    for _ = 1 to 8 do
      match Syscalls.fork k p with
      | Ok pid ->
          let c = Option.get (Kernel.proc k pid) in
          ignore (Kernel.switch_to k pid);
          ignore (Syscalls.execve k c "/bin/sh");
          ignore (Syscalls.exit_ k c 0);
          ignore (Kernel.switch_to k 1);
          ignore (Syscalls.wait k p)
      | Error _ -> ()
    done;
    (match Syscalls.mmap k p ~len:(64 * 4096) ~rw:true ~populate:true () with
    | Ok va -> ignore (Syscalls.munmap k p va)
    | Error _ -> ());
    match k.Kernel.nk with
    | None ->
        print_endline "native configuration: nothing to audit";
        0
    | Some nk ->
        let violations = Nested_kernel.Api.audit nk in
        if violations = [] then begin
          print_endline "all nested-kernel invariants hold after stress";
          0
        end
        else begin
          List.iter
            (fun v ->
              Format.printf "%a@." Nested_kernel.Invariants.pp_violation v)
            violations;
          1
        end
  in
  Cmd.v (Cmd.info "audit" ~doc:"Boot, stress the kernel, audit invariants")
    Term.(const run $ config)

(* nksim check: the exhaustive small-scope model checker (nkcheck). *)

let vocab_arg =
  let parse s =
    match Nkcheck.vocab_of_name s with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg (Printf.sprintf "unknown vocabulary %S (try: core, full, domains)" s))
  in
  let print ppf v = Format.pp_print_string ppf (Nkcheck.vocab_name v) in
  Arg.(
    value
    & opt (conv (parse, print)) Nkcheck.default.Nkcheck.vocab
    & info [ "vocab" ] ~docv:"VOCAB"
        ~doc:"Op vocabulary: $(b,core) (12 ops, exhaustible to depth 5), \
              $(b,full) (every op the checker knows) or $(b,domains) (two \
              tenant domains plus cross-domain traffic, checking the \
              ownership lattice).")

let depth_arg =
  Arg.(
    value
    & opt int Nkcheck.default.Nkcheck.depth
    & info [ "depth" ] ~docv:"N" ~doc:"Maximum op-sequence length to exhaust.")

let check_inject_arg =
  Arg.(
    value & flag
    & info [ "inject" ]
        ~doc:"Add the deterministic (rate-1.0) fault-injector toggle ops to \
              the vocabulary, so gate-denial and IPI-fault error paths are \
              exhausted too.")

let max_states_arg =
  Arg.(
    value
    & opt int Nkcheck.default.Nkcheck.max_states
    & info [ "max-states" ] ~docv:"N"
        ~doc:"Safety valve on the visited-state set; hitting it marks the run \
              truncated (and the bound not exhausted).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:"Write each shrunk counterexample as a replayable script \
              $(i,DIR)/cx-$(i,N)-$(i,SIGNATURE).nkcheck.")

let replay_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Instead of exploring, replay the op script in $(i,FILE) with \
              full per-step checks and report any violations.")

let check_cmd =
  let run depth vocab inject max_states out replay =
    match replay with
    | Some path ->
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let content = really_input_string ic len in
        close_in ic;
        let outcome = Nkcheck.replay_script content in
        Printf.printf "replay %s: %d ops\n" path
          (List.length outcome.Nkcheck.ro_ops);
        if outcome.Nkcheck.ro_failures = [] then begin
          print_endline "clean: no invariant, oracle or shutdown violations";
          0
        end
        else begin
          List.iter
            (fun (step, detail) -> Printf.printf "  step %d: %s\n" step detail)
            outcome.Nkcheck.ro_failures;
          1
        end
    | None ->
        let cfg = { Nkcheck.depth; vocab; inject; max_states } in
        let report = Nkcheck.run cfg in
        Format.printf "%a" Nkcheck.pp_report report;
        (match out with
        | None -> ()
        | Some dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            List.iteri
              (fun i cx ->
                let path =
                  Filename.concat dir
                    (Printf.sprintf "cx-%d-%s.nkcheck" i cx.Nkcheck.cx_signature)
                in
                let oc = open_out path in
                output_string oc (Nkcheck.script_of_counterexample cfg cx);
                close_out oc;
                Printf.printf "wrote %s\n" path)
              report.Nkcheck.rp_counterexamples);
        if
          report.Nkcheck.rp_counterexamples = []
          && not report.Nkcheck.rp_truncated
        then 0
        else 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Exhaust all op interleavings up to a depth bound, checking \
             invariants I1-I14 and the TLB-coherence oracle at every step")
    Term.(
      const run $ depth_arg $ vocab_arg $ check_inject_arg $ max_states_arg
      $ out_arg $ replay_file_arg)

(* nksim serve: one cell of the event-driven server scaling sweep. *)

let conns_arg =
  Arg.(
    value
    & opt int 10_000
    & info [ "conns" ] ~docv:"N"
        ~doc:"Live-connection target for the load generator (the full \
              bench sweeps 1k..100k).")

let serve_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Executor/load-generator seed (default: NKSIM_SCHED_SEED or \
              42); the same seed reproduces every number.")

let et_arg =
  Arg.(
    value & flag
    & info [ "et" ]
        ~doc:"Run the workers' connections edge-triggered instead of \
              level-triggered.")

let domains_arg =
  Arg.(
    value
    & opt int 0
    & info [ "domains" ] ~docv:"N"
        ~doc:"Partition the serving load across $(docv) mutually \
              distrusting tenant domains (each with its own kv server, \
              listener, ASID partition and run-queue credit account) \
              instead of one shared kernel tenancy.")

let serve_tenants config tenants conns seed =
  let module M = Nk_workloads.Multitenant in
  let seed = match seed with Some s -> s | None -> M.default_seed in
  let conns = match conns with 10_000 -> M.default_conns | n -> n in
  let p = M.run_one ~seed ~tenants ~conns ~config () in
  Printf.printf
    "multi-tenant kv: %s, %d vCPUs, %d tenants x %d connections (seed %d)\n"
    (Config.name config) M.cpus tenants conns seed;
  List.iteri
    (fun i (t : M.tenant) ->
      Printf.printf
        "  tenant %-2d       : %d requests (%d GET / %d SET), live peak %d%s\n"
        (i + 1) t.M.t_completed t.M.t_gets t.M.t_sets t.M.t_live_peak
        (if t.M.t_domain > 0 then Printf.sprintf " [domain %d]" t.M.t_domain
         else ""))
    p.M.per_tenant;
  Printf.printf "  requests        : %d total\n" p.M.completed;
  Printf.printf "  latency (cycles): p50=%d p99=%d p999=%d\n" p.M.p50 p.M.p99
    p.M.p999;
  Printf.printf "  throughput      : %.2f req/Mcycle\n" p.M.throughput;
  Printf.printf "  isolation       : %d cross-domain denials, %d pipe words, \
                  %d teardown leaks\n"
    p.M.xdom_denials p.M.pipe_words p.M.teardown_leaks;
  Printf.printf "  scheduler       : %d credit epochs\n" p.M.sched_epochs;
  if p.M.vmcalls > 0 then
    Printf.printf "  vmcalls         : %d\n" p.M.vmcalls;
  Printf.printf "  oracle/audit    : %d violations, %d failures\n"
    p.M.oracle_violations p.M.audit_failures;
  host_report ~host_secs:p.M.host_secs ~cycles:p.M.cycles;
  if
    p.M.oracle_violations = 0 && p.M.audit_failures = 0
    && p.M.teardown_leaks = 0
  then 0
  else 1

let serve_cmd =
  let run config conns seed et domains =
    if domains > 0 then serve_tenants config domains conns seed
    else begin
    let module S = Nk_workloads.Server_scale in
    let seed = match seed with Some s -> s | None -> S.env_seed () in
    let p = S.run_one ~seed ~et ~config conns in
    Printf.printf "kv server: %s, %d vCPUs, %d-connection target (seed %d%s)\n"
      (Config.name config) S.cpus conns seed
      (if et then ", edge-triggered" else "");
    Printf.printf "  live peak       : %d connections\n" p.S.live_peak;
    Printf.printf "  accepted        : %d (%d local, %d stolen, %d dropped)\n"
      p.S.accepted p.S.accepts_local p.S.accepts_steal p.S.backlog_drops;
    Printf.printf "  requests        : %d (%d GET / %d SET)\n" p.S.completed
      p.S.gets p.S.sets;
    Printf.printf "  latency (cycles): p50=%d p99=%d p999=%d\n" p.S.p50 p.S.p99
      p.S.p999;
    Printf.printf "  fd open/close   : %d cycles at peak table size\n"
      p.S.fd_op_cycles;
    Printf.printf "  epoll wakeups   : %d\n" p.S.epoll_wakeups;
    Printf.printf "  slab magazines  : %d hits / %d refills\n" p.S.slab_hits
      p.S.slab_refills;
    Printf.printf "  oracle/audit    : %d violations, %d failures\n"
      p.S.oracle_violations p.S.audit_failures;
    host_report ~host_secs:p.S.host_secs ~cycles:p.S.cycles;
    if p.S.oracle_violations = 0 && p.S.audit_failures = 0 then 0 else 1
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the event-driven kv server under open-loop load on 8 vCPUs \
             and report latency percentiles, fd-op cost and accept/steal \
             behaviour; with $(b,--domains) $(i,N), split the load across \
             $(i,N) isolated tenant domains instead")
    Term.(
      const run $ config $ conns_arg $ serve_seed_arg $ et_arg $ domains_arg)

let list_cmd =
  let run () =
    print_endline "configurations:";
    List.iter (fun c -> Printf.printf "  %s\n" (Config.name c)) Config.all;
    print_endline "attacks:";
    List.iter
      (fun (a : Nk_attacks.Attack.t) ->
        Printf.printf "  %-26s %s\n" a.Nk_attacks.Attack.name
          a.Nk_attacks.Attack.description)
      Nk_attacks.All.attacks;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List configurations and attacks")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "nksim" ~version:"1.0.0"
      ~doc:"Nested Kernel (ASPLOS'15) simulator driver"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ boot_cmd; attacks_cmd; audit_cmd; check_cmd; serve_cmd; list_cmd ]))
