(* The paper's section-6 extensions, live: the kernel allocator whose
   metadata lives inside the nested kernel, and access-control labels
   that a compromised kernel cannot rewrite.

     dune exec examples/protected_services.exe *)

open Nkhw
open Outer_kernel

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let () =
  banner "The classic heap exploit (native kernel)";
  print_endline
    "UMA-style allocators thread free lists through the freed chunks\n\
     themselves.  One use-after-free write converts the allocator into a\n\
     write-anything-anywhere primitive:";
  let k = Os.boot Config.Native in
  let a =
    Guarded_alloc.create_inline k.Kernel.machine k.Kernel.falloc ~chunk_size:64
  in
  let target = Syscall_table.entry_va k.Kernel.syscall_table Ktypes.sys_getpid in
  let chunk = Result.get_ok (Guarded_alloc.alloc a) in
  ignore (Guarded_alloc.free a chunk);
  ignore (Machine.kwrite_u64 k.Kernel.machine chunk target);
  ignore (Guarded_alloc.alloc a);
  let stolen = Result.get_ok (Guarded_alloc.alloc a) in
  Printf.printf "  fake link planted; allocator returned %#x\n" stolen;
  Printf.printf "  syscall-table entry for getpid is at  %#x  -> %s\n" target
    (if stolen = target then "the heap now writes the syscall table" else "miss");

  banner "The guarded allocator (nested kernel)";
  let k = Os.boot Config.Perspicuos in
  let nk = Option.get k.Kernel.nk in
  let a =
    Result.get_ok
      (Guarded_alloc.create_guarded k.Kernel.machine k.Kernel.falloc nk
         ~chunk_size:64)
  in
  let chunk = Result.get_ok (Guarded_alloc.alloc a) in
  ignore (Guarded_alloc.free a chunk);
  ignore (Machine.kwrite_u64 k.Kernel.machine chunk 0xBAD0000);
  let c1 = Result.get_ok (Guarded_alloc.alloc a) in
  let c2 = Result.get_ok (Guarded_alloc.alloc a) in
  Printf.printf
    "  same corruption attempt; allocations stay inside the slab: %#x, %#x\n" c1
    c2;
  Printf.printf "  (free-list metadata lives in nested-kernel memory)\n";

  banner "Access-control labels the kernel cannot forge";
  let mac = Result.get_ok (Mac.create_protected nk) in
  ignore (Mac.set_object mac "/etc/master.passwd" 12);
  ignore (Mac.set_subject mac 2 3);
  Printf.printf "  subject pid 2 has integrity 3; /etc/master.passwd has 12\n";
  (match Mac.check_write mac 2 "/etc/master.passwd" with
  | Error _ -> print_endline "  write-up denied, as it should be"
  | Ok () -> print_endline "  BUG: write-up allowed");
  (match
     Machine.write_u8 k.Kernel.machine ~ring:Mmu.Supervisor
       (Mac.subject_label_va mac 2) 15
   with
  | Error f -> Format.printf "  direct label overwrite -> %a@." Fault.pp f
  | Ok () -> print_endline "  BUG: label overwritten");
  (match Mac.set_subject mac 2 15 with
  | Error e ->
      Printf.printf "  mediated re-elevation  -> %s\n" (Ktypes.errno_to_string e)
  | Ok () -> print_endline "  BUG: re-elevation accepted");
  (match Mac.set_subject mac 2 1 with
  | Ok () -> print_endline "  lowering the label is still allowed (monotone policy)"
  | Error e ->
      Printf.printf "  BUG: lowering refused: %s\n" (Ktypes.errno_to_string e));

  banner "Cost of the protection";
  let per_op allocator =
    let c = Result.get_ok (Guarded_alloc.alloc allocator) in
    ignore (Guarded_alloc.free allocator c);
    let snap = Clock.snapshot k.Kernel.machine.Machine.clock in
    for _ = 1 to 100 do
      let c = Result.get_ok (Guarded_alloc.alloc allocator) in
      ignore (Guarded_alloc.free allocator c)
    done;
    Clock.cycles_since k.Kernel.machine.Machine.clock snap / 200
  in
  let inline =
    Guarded_alloc.create_inline k.Kernel.machine k.Kernel.falloc ~chunk_size:64
  in
  Printf.printf "  inline metadata : %4d cycles per alloc/free\n" (per_op inline);
  Printf.printf "  guarded metadata: %4d cycles per alloc/free\n" (per_op a);
  Printf.printf "\ninvariant audit: %d violations\n"
    (List.length (Nested_kernel.Api.audit nk))
